package sim

import "repro/internal/hdl"

// NBARecord is one pending signal update in typed, pooled form: the
// target (an opaque front-end signal pointer), the resolved write
// bounds, the pending value, and a pre-bound Apply hook that commits
// it. It replaces the per-update closures the nonblocking-assignment
// region used to queue — a closure costs a heap allocation per
// scheduled update, while records live in recycled kernel storage, so a
// steady-state simulation schedules millions of updates with no
// allocation at all.
//
// The kernel never interprets the front-end fields; it only stores the
// record and calls Apply(r) in schedule order. Apply hooks must be
// pre-bound once per simulator/site (a method value created at schedule
// time would itself allocate).
type NBARecord struct {
	// Apply commits the update. It runs in the NBA region (zero-delay
	// records) or the active region of a later time step (delayed
	// records), interleaved in schedule order with plain closure events.
	Apply func(r *NBARecord)

	// Front-end payload. Sig is the resolved target signal; Val the
	// pending value; Lo/Width the bit range for partial writes; Aux
	// front-end scratch (e.g. a memory word index); Comp the
	// connectivity-component index for output attribution.
	Sig   any
	Val   hdl.Vector
	Lo    int
	Width int
	Aux   int
	Comp  int32

	// Pool linkage for delayed records: the owning kernel and the
	// pre-built future-event closure that applies the record and
	// returns it to the free list. Zero-delay records live in the nba
	// region slice and leave both nil.
	k    *Kernel
	fire func()
}

// NBAPut appends a zeroed update record to the nonblocking-assignment
// region of the current time slot and returns it for the caller to
// fill in. Records apply in put order, interleaved with NBA(fn)
// closures. The pointer is valid only until the next NBAPut/NBA call
// on this kernel: the backing slice is recycled across delta cycles
// (the same storage discipline nbaSpare established for the closure
// queue, extended from the slice to the records themselves) and may
// move when it grows.
func (k *Kernel) NBAPut() *NBARecord {
	if len(k.nba) < cap(k.nba) {
		k.nba = k.nba[:len(k.nba)+1]
	} else {
		k.nba = append(k.nba, NBARecord{})
	}
	r := &k.nba[len(k.nba)-1]
	*r = NBARecord{}
	return r
}

// ScheduleUpdate returns a pooled update record that will be applied at
// now+delay. Zero delay queues into the current slot's NBA region
// (identical to NBAPut); positive delays schedule the record on the
// time wheel, to apply in the active region of its target time — the
// same region ordering the closure-based Schedule gave scheduled signal
// assignments. Delayed records come from a per-kernel free list with
// pre-built fire closures, so steady-state scheduling does not
// allocate once the pool has grown to the high-water mark of in-flight
// updates.
func (k *Kernel) ScheduleUpdate(delay Time) *NBARecord {
	if delay == 0 {
		return k.NBAPut()
	}
	var r *NBARecord
	if n := len(k.recFree); n > 0 {
		r = k.recFree[n-1]
		k.recFree[n-1] = nil
		k.recFree = k.recFree[:n-1]
	} else {
		r = &NBARecord{k: k}
		r.fire = func() {
			r.Apply(r)
			r.release()
		}
	}
	k.seq++
	k.future.push(futureEvent{at: k.now + delay, seq: k.seq, fn: r.fire})
	return r
}

// release clears a delayed record's payload (dropping its references)
// and returns it to the owning kernel's free list, keeping only the
// pool linkage.
func (r *NBARecord) release() {
	*r = NBARecord{k: r.k, fire: r.fire}
	r.k.recFree = append(r.k.recFree, r)
}

// nbaApply adapts a plain closure to the record representation, so
// NBA(fn) events interleave with typed records in one queue. Storing a
// func value in the Sig interface does not allocate (func values are
// pointer-shaped).
func nbaApply(r *NBARecord) { r.Sig.(func())() }
