package sim

import (
	"sync/atomic"
	"testing"
)

// TestEngineLockstepTimeAdvance pins the barrier protocol's time rule:
// every kernel advances to the global minimum next event time, even
// when its own queue has nothing at that time.
func TestEngineLockstepTimeAdvance(t *testing.T) {
	ka, kb := NewKernel(), NewKernel()
	var times []Time
	ka.Schedule(5, func() { times = append(times, ka.Now()) })
	kb.Schedule(7, func() { times = append(times, kb.Now()) })
	ka.Schedule(7, func() { times = append(times, ka.Now()) })
	e := NewEngine([]*Kernel{ka, kb}, 1)
	if r := e.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if len(times) != 3 || times[0] != 5 || times[1] != 7 || times[2] != 7 {
		t.Errorf("times = %v, want [5 7 7]", times)
	}
	if ka.Now() != 7 || kb.Now() != 7 {
		t.Errorf("kernels at %d/%d, want both at 7", ka.Now(), kb.Now())
	}
}

// TestEngineFinishCutsAtDeltaBoundary pins the deterministic stop rule:
// a Finish in one shard lets every shard complete the current delta's
// active region, then stops the run before NBA application and before
// any later event.
func TestEngineFinishCutsAtDeltaBoundary(t *testing.T) {
	ka, kb := NewKernel(), NewKernel()
	var log []string
	ka.Active(func() {
		log = append(log, "a-finishes")
		ka.Finish()
	})
	ka.Active(func() { log = append(log, "a-same-delta") })
	kb.Active(func() { log = append(log, "b-same-delta") })
	kb.NBA(func() { log = append(log, "b-nba") })
	kb.Schedule(3, func() { log = append(log, "b-later") })
	e := NewEngine([]*Kernel{ka, kb}, 1)
	if r := e.Run(); r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	want := map[string]bool{"a-finishes": true, "a-same-delta": true, "b-same-delta": true}
	for _, l := range log {
		if !want[l] {
			t.Errorf("event %q ran after the finish boundary", l)
		}
		delete(want, l)
	}
	for l := range want {
		t.Errorf("event %q did not run before the finish boundary", l)
	}
}

// TestEngineParallelMatchesSerial runs the same multi-kernel program
// through the direct path (Workers=1) and the worker pool (Workers=4)
// and requires identical per-kernel event counts and end state.
func TestEngineParallelMatchesSerial(t *testing.T) {
	build := func() ([]*Kernel, *[]int64) {
		ks := make([]*Kernel, 6)
		counts := make([]int64, 6)
		for i := range ks {
			k := NewKernel()
			ks[i] = k
			i := i
			steps := 0
			k.NewProcess("p", func(p *Process) {
				counts[i]++
				steps++
				if steps < 50+i*10 {
					p.Delay(Time(1 + i%3))
				}
			})
		}
		return ks, &counts
	}

	ksSerial, serialCounts := build()
	eS := NewEngine(ksSerial, 1)
	rS := eS.Run()

	ksPar, parCounts := build()
	eP := NewEngine(ksPar, 4)
	rP := eP.Run()

	if rS != rP {
		t.Fatalf("stop reasons differ: %v vs %v", rS, rP)
	}
	if eS.Now() != eP.Now() {
		t.Errorf("end times differ: %d vs %d", eS.Now(), eP.Now())
	}
	if eS.Events() != eP.Events() {
		t.Errorf("event totals differ: %d vs %d", eS.Events(), eP.Events())
	}
	for i := range *serialCounts {
		if (*serialCounts)[i] != (*parCounts)[i] {
			t.Errorf("kernel %d ran %d steps parallel, %d serial",
				i, (*parCounts)[i], (*serialCounts)[i])
		}
	}
}

// TestEngineWorkersActuallyConcurrent sanity-checks that the pool
// dispatches phases to more than one goroutine (the barrier protocol
// is pointless otherwise). Each kernel records the set of goroutines
// touching it indirectly via a shared high-water counter.
func TestEngineWorkersActuallyConcurrent(t *testing.T) {
	const n = 4
	ks := make([]*Kernel, n)
	var inPhase, highWater atomic.Int32
	gate := make(chan struct{})
	for i := range ks {
		k := NewKernel()
		ks[i] = k
		k.Active(func() {
			cur := inPhase.Add(1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			if cur == n {
				close(gate) // all workers inside the same phase at once
			}
			if cur < n {
				select {
				case <-gate:
				default:
					// Wait briefly for the others; if the pool were
					// serial this would simply fall through one by one.
					<-gate
				}
			}
			inPhase.Add(-1)
		})
	}
	e := NewEngine(ks, n)
	if r := e.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if hw := highWater.Load(); hw != n {
		t.Errorf("max concurrent phase executions = %d, want %d", hw, n)
	}
}

// TestEngineEventBudgetCutIsConfigurationInvariant pins the budget
// rule behind excluding the worker count from experiment cache keys:
// the StopEvents cut happens at a delta boundary against the SUM of
// events over shards, so a budget-aborted run executes exactly the
// same per-kernel event counts whether the kernels run on one worker
// or several.
func TestEngineEventBudgetCutIsConfigurationInvariant(t *testing.T) {
	build := func() []*Kernel {
		ks := make([]*Kernel, 3)
		for i := range ks {
			k := NewKernel()
			ks[i] = k
			var hop func()
			hop = func() { k.Schedule(1, hop) } // one event per time step, forever
			k.Active(hop)
		}
		return ks
	}
	run := func(workers int) (StopReason, []uint64, uint64) {
		ks := build()
		e := NewEngine(ks, workers)
		e.MaxEvents = 100
		r := e.Run()
		counts := make([]uint64, len(ks))
		for i, k := range ks {
			counts[i] = k.Events()
		}
		return r, counts, e.Events()
	}
	rS, countsS, totalS := run(1)
	rP, countsP, totalP := run(3)
	if rS != StopEvents || rP != StopEvents {
		t.Fatalf("stop reasons = %v/%v, want event-limit", rS, rP)
	}
	if totalS != totalP {
		t.Errorf("aborted totals differ: %d serial vs %d parallel", totalS, totalP)
	}
	for i := range countsS {
		if countsS[i] != countsP[i] {
			t.Errorf("kernel %d executed %d events serial, %d parallel", i, countsS[i], countsP[i])
		}
	}
}

// TestEngineDeltaSerialMonotonic pins the run-global delta serial:
// identical across kernels within a round, strictly increasing across
// rounds and time steps, and never the reserved zero value.
func TestEngineDeltaSerialMonotonic(t *testing.T) {
	ka, kb := NewKernel(), NewKernel()
	var aSerials, bSerials []uint64
	hop := 0
	var spin func()
	spin = func() {
		aSerials = append(aSerials, ka.DeltaSerial())
		hop++
		if hop < 3 {
			ka.NBA(func() { ka.Active(spin) })
		} else if hop == 3 {
			ka.Schedule(5, spin)
		}
	}
	ka.Active(spin)
	kb.Active(func() { bSerials = append(bSerials, kb.DeltaSerial()) })
	e := NewEngine([]*Kernel{ka, kb}, 1)
	if r := e.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if len(aSerials) == 0 || aSerials[0] == 0 {
		t.Fatalf("serials start at %v; zero is reserved", aSerials)
	}
	if len(bSerials) != 1 || bSerials[0] != aSerials[0] {
		t.Errorf("kernels disagree on the first round serial: %v vs %v", aSerials, bSerials)
	}
	for i := 1; i < len(aSerials); i++ {
		if aSerials[i] <= aSerials[i-1] {
			t.Errorf("serials not strictly increasing: %v", aSerials)
		}
	}
}
