package sim

import (
	"runtime"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(10, func() { order = append(order, 3) }) // FIFO at same time
	if r := k.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 10 {
		t.Errorf("now = %d", k.Now())
	}
}

func TestNBARunsAfterActive(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Active(func() {
		k.NBA(func() { order = append(order, "nba") })
		k.Active(func() { order = append(order, "active2") })
		order = append(order, "active1")
	})
	k.Run()
	want := []string{"active1", "active2", "nba"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessDelay(t *testing.T) {
	k := NewKernel()
	var times []Time
	pc := 0
	k.NewProcess("p", func(p *Process) {
		times = append(times, k.Now())
		switch pc {
		case 0:
			pc = 1
			p.Delay(7)
		case 1:
			pc = 2
			p.Delay(3)
		default:
			p.Terminate()
		}
	})
	if r := k.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if len(times) != 3 || times[0] != 0 || times[1] != 7 || times[2] != 10 {
		t.Errorf("times = %v", times)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	k := NewKernel()
	var log []string
	apc, bpc := 0, 0
	k.NewProcess("a", func(p *Process) {
		switch apc {
		case 0:
			log = append(log, "a0")
			apc = 1
			p.Delay(5)
		case 1:
			log = append(log, "a5")
			apc = 2
			p.Delay(10)
		default:
			log = append(log, "a15")
			p.Terminate()
		}
	})
	k.NewProcess("b", func(p *Process) {
		switch bpc {
		case 0:
			log = append(log, "b0")
			bpc = 1
			p.Delay(10)
		default:
			log = append(log, "b10")
			p.Terminate()
		}
	})
	k.Run()
	want := []string{"a0", "b0", "a5", "b10", "a15"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q want %q", i, log[i], want[i])
		}
	}
}

func TestFinishStopsRun(t *testing.T) {
	k := NewKernel()
	ran := false
	pc := 0
	k.NewProcess("p", func(p *Process) {
		if pc == 0 {
			pc = 1
			p.Delay(5)
			return
		}
		k.Finish()
		panic(TerminateProcess{})
	})
	k.Schedule(100, func() { ran = true })
	if r := k.Run(); r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	if ran {
		t.Error("event after finish should not run")
	}
	if k.Now() != 5 {
		t.Errorf("now = %d", k.Now())
	}
}

func TestActivationWait(t *testing.T) {
	k := NewKernel()
	var got Time
	var waiter *Process
	waited := false
	waiter = k.NewProcess("waiter", func(p *Process) {
		if !waited {
			// First activation: suspend until someone calls Activate.
			waited = true
			return
		}
		got = k.Now()
		p.Terminate()
	})
	kicked := false
	k.NewProcess("kicker", func(p *Process) {
		if !kicked {
			kicked = true
			p.Delay(42)
			return
		}
		waiter.Activate()
		p.Terminate()
	})
	k.Run()
	if got != 42 {
		t.Errorf("woken at %d, want 42", got)
	}
}

func TestDeltaLimit(t *testing.T) {
	k := NewKernel()
	k.MaxDeltas = 50
	var spin func()
	spin = func() {
		k.NBA(func() { k.Active(spin) })
	}
	k.Active(spin)
	if r := k.Run(); r != StopDeltas {
		t.Errorf("stop = %v, want delta-limit", r)
	}
}

func TestTimeLimit(t *testing.T) {
	k := NewKernel()
	k.MaxTime = 100
	var tick func()
	tick = func() { k.Schedule(30, tick) }
	k.Schedule(30, tick)
	if r := k.Run(); r != StopTimeout {
		t.Errorf("stop = %v, want timeout", r)
	}
	if k.Now() > 100 {
		t.Errorf("now = %d advanced past limit", k.Now())
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 100
	var loop func()
	loop = func() { k.Active(loop) }
	k.Active(loop)
	if r := k.Run(); r != StopEvents {
		t.Errorf("stop = %v, want event-limit", r)
	}
}

func TestFinishAbandonsInfiniteProcess(t *testing.T) {
	// A free-running clock process never terminates on its own; Finish
	// must stop the run, and dropping the kernel must leave nothing
	// behind (no goroutine exists per process to leak).
	before := runtime.NumGoroutine()
	k := NewKernel()
	iterations := 0
	k.NewProcess("clock", func(p *Process) {
		iterations++
		if iterations > 3 {
			k.Finish()
			return
		}
		p.Delay(5)
	})
	if r := k.Run(); r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines grew from %d to %d", before, n)
	}
}

func TestProcessPanicBecomesFault(t *testing.T) {
	k := NewKernel()
	k.NewProcess("bad", func(p *Process) {
		var s []int
		_ = s[3] // index out of range
	})
	r := k.Run()
	if r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	if k.Fault() == "" {
		t.Error("fault not recorded")
	}
}

func TestTerminateMakesActivationsNoOps(t *testing.T) {
	k := NewKernel()
	runs := 0
	p := k.NewProcess("p", func(p *Process) {
		runs++
		p.Terminate()
	})
	p.Activate() // queued before the process runs and terminates
	k.Run()
	if runs != 1 {
		t.Errorf("step ran %d times, want 1 (post-Terminate activation must be a no-op)", runs)
	}
	if !p.Dead() {
		t.Error("process not dead after Terminate")
	}
}

func TestZeroDelayYieldsFIFO(t *testing.T) {
	k := NewKernel()
	var order []string
	delayed := false
	k.NewProcess("a", func(p *Process) {
		if !delayed {
			order = append(order, "a1")
			delayed = true
			p.Delay(0)
			return
		}
		order = append(order, "a2")
		p.Terminate()
	})
	k.NewProcess("b", func(p *Process) {
		order = append(order, "b1")
		p.Terminate()
	})
	k.Run()
	// a runs, delays 0 (goes to back of active queue), b runs, a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}

func TestZeroDelayStaysInCurrentDelta(t *testing.T) {
	// Delay(0) reschedules in the *current* active region: the process
	// resumes at the same simulated time, before NBA updates apply and
	// before time advances.
	k := NewKernel()
	var order []string
	yielded := false
	k.NewProcess("p", func(p *Process) {
		if !yielded {
			yielded = true
			k.NBA(func() { order = append(order, "nba") })
			p.Delay(0)
			return
		}
		order = append(order, "resumed")
		if k.Now() != 0 {
			t.Errorf("zero delay advanced time to %d", k.Now())
		}
		p.Terminate()
	})
	k.Schedule(1, func() { order = append(order, "t1") })
	k.Run()
	want := []string{"resumed", "nba", "t1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}
