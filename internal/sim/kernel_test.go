package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(10, func() { order = append(order, 3) }) // FIFO at same time
	if r := k.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 10 {
		t.Errorf("now = %d", k.Now())
	}
}

func TestNBARunsAfterActive(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Active(func() {
		k.NBA(func() { order = append(order, "nba") })
		k.Active(func() { order = append(order, "active2") })
		order = append(order, "active1")
	})
	k.Run()
	want := []string{"active1", "active2", "nba"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessDelay(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.SpawnProcess("p", func(p *Proc) {
		times = append(times, k.Now())
		p.Delay(7)
		times = append(times, k.Now())
		p.Delay(3)
		times = append(times, k.Now())
	})
	if r := k.Run(); r != StopIdle {
		t.Fatalf("stop = %v", r)
	}
	k.Shutdown()
	if len(times) != 3 || times[0] != 0 || times[1] != 7 || times[2] != 10 {
		t.Errorf("times = %v", times)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	k := NewKernel()
	var log []string
	k.SpawnProcess("a", func(p *Proc) {
		log = append(log, "a0")
		p.Delay(5)
		log = append(log, "a5")
		p.Delay(10)
		log = append(log, "a15")
	})
	k.SpawnProcess("b", func(p *Proc) {
		log = append(log, "b0")
		p.Delay(10)
		log = append(log, "b10")
	})
	k.Run()
	k.Shutdown()
	want := []string{"a0", "b0", "a5", "b10", "a15"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q want %q", i, log[i], want[i])
		}
	}
}

func TestFinishStopsRun(t *testing.T) {
	k := NewKernel()
	ran := false
	k.SpawnProcess("p", func(p *Proc) {
		p.Delay(5)
		k.Finish()
		panic(TerminateProcess{})
	})
	k.Schedule(100, func() { ran = true })
	if r := k.Run(); r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	k.Shutdown()
	if ran {
		t.Error("event after finish should not run")
	}
	if k.Now() != 5 {
		t.Errorf("now = %d", k.Now())
	}
}

func TestActivationWait(t *testing.T) {
	k := NewKernel()
	var got Time
	var waiter *Proc
	waiter = k.SpawnProcess("waiter", func(p *Proc) {
		p.WaitActivation()
		got = k.Now()
	})
	k.SpawnProcess("kicker", func(p *Proc) {
		p.Delay(42)
		waiter.Activate()
	})
	k.Run()
	k.Shutdown()
	if got != 42 {
		t.Errorf("woken at %d, want 42", got)
	}
}

func TestDeltaLimit(t *testing.T) {
	k := NewKernel()
	k.MaxDeltas = 50
	var spin func()
	spin = func() {
		k.NBA(func() { k.Active(spin) })
	}
	k.Active(spin)
	if r := k.Run(); r != StopDeltas {
		t.Errorf("stop = %v, want delta-limit", r)
	}
}

func TestTimeLimit(t *testing.T) {
	k := NewKernel()
	k.MaxTime = 100
	var tick func()
	tick = func() { k.Schedule(30, tick) }
	k.Schedule(30, tick)
	if r := k.Run(); r != StopTimeout {
		t.Errorf("stop = %v, want timeout", r)
	}
	if k.Now() > 100 {
		t.Errorf("now = %d advanced past limit", k.Now())
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 100
	var loop func()
	loop = func() { k.Active(loop) }
	k.Active(loop)
	if r := k.Run(); r != StopEvents {
		t.Errorf("stop = %v, want event-limit", r)
	}
}

func TestShutdownKillsInfiniteProcess(t *testing.T) {
	k := NewKernel()
	iterations := 0
	k.SpawnProcess("clock", func(p *Proc) {
		for {
			p.Delay(5)
			iterations++
			if iterations > 3 {
				k.Finish()
				// keep looping: the process itself never returns
			}
		}
	})
	if r := k.Run(); r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	k.Shutdown() // must not hang
}

func TestProcessPanicBecomesFault(t *testing.T) {
	k := NewKernel()
	k.SpawnProcess("bad", func(p *Proc) {
		var s []int
		_ = s[3] // index out of range
	})
	r := k.Run()
	k.Shutdown()
	if r != StopFinish {
		t.Fatalf("stop = %v", r)
	}
	if k.Fault() == "" {
		t.Error("fault not recorded")
	}
}

func TestZeroDelayYieldsFIFO(t *testing.T) {
	k := NewKernel()
	var order []string
	k.SpawnProcess("a", func(p *Proc) {
		order = append(order, "a1")
		p.Delay(0)
		order = append(order, "a2")
	})
	k.SpawnProcess("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	k.Shutdown()
	// a runs, delays 0 (goes to back of active queue), b runs, a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}
