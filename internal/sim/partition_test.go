package sim

import "testing"

func TestPartitionComponents(t *testing.T) {
	// 0-1-2 connected, 3 alone, 4-5 connected.
	p := NewPartition(6)
	p.Union(0, 1)
	p.Union(1, 2)
	p.Union(4, 5)
	comp, n := p.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 split across components: %v", comp)
	}
	if comp[4] != comp[5] {
		t.Errorf("4,5 split across components: %v", comp)
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Errorf("3 merged with another component: %v", comp)
	}
	// Numbering follows first appearance.
	if comp[0] != 0 || comp[3] != 1 || comp[4] != 2 {
		t.Errorf("component numbering not first-appearance order: %v", comp)
	}
}

func TestAssignShardsBalance(t *testing.T) {
	weights := []int{10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	shardOf, n := AssignShards(weights, 2)
	if n != 2 {
		t.Fatalf("shards = %d, want 2", n)
	}
	load := make([]int, n)
	for c, s := range shardOf {
		load[s] += weights[c]
	}
	// LPT puts the heavy component alone-ish: the light shard carries
	// everything else. Loads must be within the heavy weight of each
	// other (10 vs 9 here, not 11 vs 8 or worse).
	diff := load[0] - load[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Errorf("unbalanced shards: %v", load)
	}
}

func TestAssignShardsDeterministicAndClamped(t *testing.T) {
	weights := []int{3, 3, 3}
	a, na := AssignShards(weights, 8)
	b, nb := AssignShards(weights, 8)
	if na != 3 || nb != 3 {
		t.Fatalf("shards = %d/%d, want clamped to 3 components", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment not deterministic: %v vs %v", a, b)
		}
	}
	one, n1 := AssignShards(weights, 1)
	if n1 != 1 {
		t.Fatalf("single shard count = %d", n1)
	}
	for _, s := range one {
		if s != 0 {
			t.Fatalf("single-shard assignment = %v", one)
		}
	}
}
