package sim_test

// The differential harness: the sharded parallel backend is shippable
// only because this file proves it observationally identical to the
// serial schedule. It runs a corpus of designs — randomly generated
// multi-component Verilog clusters plus real bench-suite problems in
// both HDLs — under 1, 2, and 4 workers and asserts byte-identical
// logs, VCD waveforms, final signal values, and event counts. CI runs
// it under -race, which also shakes out cross-shard data races the
// byte comparison cannot see.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
	"repro/internal/vhdlsim"
	"repro/internal/vsim"
)

// workerCounts are the backend configurations every design runs under;
// 1 is the serial reference.
var workerCounts = []int{1, 2, 4}

// simOutcome is the full observable outcome of one Verilog run.
type simOutcome struct {
	log     string
	vcd     string
	events  uint64
	endTime uint64
	final   map[string]string
	flags   string
}

func runVerilog(t *testing.T, name, src string, workers int) simOutcome {
	t.Helper()
	comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: name, Text: src})
	if !comp.OK {
		t.Fatalf("%s does not compile:\n%s\nsource:\n%s", name, comp.Log, src)
	}
	res, err := vsim.Simulate(comp.Modules, "tb", vsim.Options{
		Workers:      workers,
		CaptureFinal: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Fault != "" {
		t.Fatalf("%s faulted (harness designs must be valid): %s\nsource:\n%s", name, res.Fault, src)
	}
	return simOutcome{
		log:     res.Log,
		vcd:     res.VCD,
		events:  res.Events,
		endTime: uint64(res.EndTime),
		final:   res.Final,
		flags:   fmt.Sprintf("fin=%v stop=%v to=%v", res.Finished, res.Stopped, res.TimedOut),
	}
}

func diffOutcomes(t *testing.T, name string, ref, got simOutcome, workers int) {
	t.Helper()
	if got.log != ref.log {
		t.Errorf("%s: log differs at %d workers:\n--- serial ---\n%s\n--- %dw ---\n%s",
			name, workers, ref.log, workers, got.log)
	}
	if got.vcd != ref.vcd {
		t.Errorf("%s: VCD differs at %d workers", name, workers)
	}
	if got.events != ref.events {
		t.Errorf("%s: event count %d at %d workers, want %d", name, got.events, workers, ref.events)
	}
	if got.endTime != ref.endTime {
		t.Errorf("%s: end time %d at %d workers, want %d", name, got.endTime, workers, ref.endTime)
	}
	if got.flags != ref.flags {
		t.Errorf("%s: stop flags %q at %d workers, want %q", name, got.flags, workers, ref.flags)
	}
	for sig, want := range ref.final {
		if got.final[sig] != want {
			t.Errorf("%s: final %s = %s at %d workers, want %s", name, sig, got.final[sig], workers, want)
		}
	}
	if len(got.final) != len(ref.final) {
		t.Errorf("%s: %d final signals at %d workers, want %d", name, len(got.final), workers, len(ref.final))
	}
}

// genClusterDesign emits a random Verilog design of several independent
// clusters — distinct connectivity components with their own clocks,
// state, logging, and $random streams — plus a finisher process. The
// shapes cover the interactions most likely to diverge under sharding:
// NBA vs blocking assignment order, continuous-assignment chains,
// same-timestamp activity across components, $monitor, zero delays,
// and a $finish cut that truncates every component at the same delta.
func genClusterDesign(rng *rand.Rand) string {
	var sb strings.Builder
	nclusters := 2 + rng.Intn(3)
	ops := []string{"+", "-", "^", "&", "|"}
	for c := 0; c < nclusters; c++ {
		w := 4 + rng.Intn(13)
		period := 2 + rng.Intn(4)
		op1 := ops[rng.Intn(len(ops))]
		op2 := ops[rng.Intn(len(ops))]
		inc := 1 + rng.Intn(7)
		fmt.Fprintf(&sb, "module cluster%d;\n", c)
		fmt.Fprintf(&sb, "  reg clk; reg [%d:0] a, b;\n", w-1)
		fmt.Fprintf(&sb, "  wire [%d:0] m;\n", w-1)
		fmt.Fprintf(&sb, "  assign m = a %s b;\n", op2)
		fmt.Fprintf(&sb, "  initial begin clk = 0; a = 0; b = %d'd%d; end\n", w, rng.Intn(1<<uint(min(w, 16))))
		fmt.Fprintf(&sb, "  always #%d clk = ~clk;\n", period)
		sb.WriteString("  always @(posedge clk) begin\n")
		fmt.Fprintf(&sb, "    a <= a + %d;\n", inc)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, "    b <= b %s (a + %d);\n", op1, rng.Intn(5))
		} else {
			fmt.Fprintf(&sb, "    b = b %s a;\n", op1)
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, "    if (a[0]) b <= $random;\n")
		}
		fmt.Fprintf(&sb, "    $display(\"c%d a=%%0d b=%%0h m=%%0d t=%%0t\", a, b, m, $time);\n", c)
		sb.WriteString("  end\n")
		if rng.Intn(3) == 0 {
			// A second process in the same component, racing the first
			// through the shared delta schedule.
			fmt.Fprintf(&sb, "  always @(negedge clk) $display(\"c%d neg a=%%0d\", a);\n", c)
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, "  initial begin #%d $monitor(\"c%d mon m=%%0d t=%%0t\", m, $time); end\n", 1+rng.Intn(9), c)
		}
		sb.WriteString("endmodule\n")
	}
	sb.WriteString("module tb;\n")
	for c := 0; c < nclusters; c++ {
		fmt.Fprintf(&sb, "  cluster%d u%d();\n", c, c)
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("  initial begin $dumpfile(\"w.vcd\"); $dumpvars; end\n")
	}
	fmt.Fprintf(&sb, "  initial begin #%d $display(\"tb done t=%%0t\", $time); $finish; end\n", 20+rng.Intn(41))
	sb.WriteString("endmodule\n")
	return sb.String()
}

// TestDifferentialRandomClusters is the core of the harness: randomly
// generated multi-component designs, where sharding actually spreads
// work, compared across worker counts.
func TestDifferentialRandomClusters(t *testing.T) {
	designs := 24
	if testing.Short() {
		designs = 8
	}
	for i := 0; i < designs; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i*131)))
		src := genClusterDesign(rng)
		name := fmt.Sprintf("clusters-%d", i)
		ref := runVerilog(t, name, src, workerCounts[0])
		if !strings.Contains(ref.log, "$finish called") {
			t.Fatalf("%s: reference run did not finish:\n%s", name, ref.log)
		}
		for _, w := range workerCounts[1:] {
			diffOutcomes(t, name, ref, runVerilog(t, name, src, w), w)
		}
	}
}

// TestDifferentialBenchVerilog replays real bench-suite problems
// (golden DUT + reference testbench) through the backends. These are
// mostly single-component designs — the degenerate case the sharded
// backend must also get exactly right.
func TestDifferentialBenchVerilog(t *testing.T) {
	suite := bench.NewSuite()
	stride := 8
	if testing.Short() {
		stride = 32
	}
	for i := 0; i < len(suite.Problems); i += stride {
		p := suite.Problems[i]
		src := p.GoldenVerilog + "\n" + p.RefTBVerilog
		ref := runVerilog(t, p.ID, src, workerCounts[0])
		for _, w := range workerCounts[1:] {
			diffOutcomes(t, p.ID, ref, runVerilog(t, p.ID, src, w), w)
		}
	}
}

// TestDifferentialBenchVHDL does the same through the VHDL front-end.
func TestDifferentialBenchVHDL(t *testing.T) {
	suite := bench.NewSuite()
	stride := 12
	if testing.Short() {
		stride = 48
	}
	type vhdlOutcome struct {
		log     string
		events  uint64
		endTime uint64
		asserts int
		final   map[string]string
	}
	run := func(p *bench.Problem, workers int) vhdlOutcome {
		src := p.GoldenVHDL + "\n" + p.RefTBVHDL
		comp := edatool.Compile(edatool.VHDL, edatool.Source{Name: p.ID + ".vhd", Text: src})
		if !comp.OK {
			t.Fatalf("%s does not compile:\n%s", p.ID, comp.Log)
		}
		res, err := vhdlsim.Simulate(comp.Units, "tb", vhdlsim.Options{
			Workers:      workers,
			CaptureFinal: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if res.Fault != "" {
			t.Fatalf("%s faulted: %s", p.ID, res.Fault)
		}
		return vhdlOutcome{
			log:     res.Log,
			events:  res.Events,
			endTime: uint64(res.EndTime),
			asserts: res.AssertErrors,
			final:   res.Final,
		}
	}
	for i := 0; i < len(suite.Problems); i += stride {
		p := suite.Problems[i]
		ref := run(p, workerCounts[0])
		for _, w := range workerCounts[1:] {
			got := run(p, w)
			if got.log != ref.log {
				t.Errorf("%s: VHDL log differs at %d workers:\n--- serial ---\n%s\n--- %dw ---\n%s",
					p.ID, w, ref.log, w, got.log)
			}
			if got.events != ref.events || got.endTime != ref.endTime || got.asserts != ref.asserts {
				t.Errorf("%s: VHDL counters differ at %d workers: %+v vs %+v", p.ID, w, got, ref)
			}
			for sig, want := range ref.final {
				if got.final[sig] != want {
					t.Errorf("%s: VHDL final %s = %s at %d workers, want %s", p.ID, sig, got.final[sig], w, want)
				}
			}
		}
	}
}

// TestDifferentialRepeatable pins run-to-run determinism of the
// parallel backend itself: the same design at the same worker count
// twice must agree byte for byte (goroutine scheduling must never leak
// into output).
func TestDifferentialRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	src := genClusterDesign(rng)
	for _, w := range workerCounts {
		a := runVerilog(t, "repeat", src, w)
		b := runVerilog(t, "repeat", src, w)
		diffOutcomes(t, "repeat", a, b, w)
	}
}
