package sim_test

// The differential harness: the sharded parallel backend is shippable
// only because this file proves it observationally identical to the
// serial schedule. It runs a corpus of designs — randomly generated
// multi-component Verilog clusters plus real bench-suite problems in
// both HDLs — under 1, 2, and 4 workers and asserts byte-identical
// logs, VCD waveforms, final signal values, and event counts. CI runs
// it under -race, which also shakes out cross-shard data races the
// byte comparison cannot see.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
	"repro/internal/sim"
	"repro/internal/vhdlsim"
	"repro/internal/vsim"
)

// workerCounts are the backend configurations every design runs under;
// 1 is the serial reference.
var workerCounts = []int{1, 2, 4}

// backendModes are the execution backends the corpus tests cross with
// the worker counts: the serial reference runs compiled (the default),
// and every (mode, workers) combination must match it byte for byte —
// including the forced 4-state interpreter, so compiled-vs-interpreted
// divergence is caught by the same harness that guards sharding.
var backendModes = []sim.BackendMode{sim.BackendCompiled, sim.BackendInterpret}

// simOutcome is the full observable outcome of one Verilog run.
type simOutcome struct {
	log     string
	vcd     string
	events  uint64
	endTime uint64
	final   map[string]string
	flags   string
	shards  int
}

func runVerilog(t *testing.T, name, src string, workers int) simOutcome {
	return runVerilogMode(t, name, src, workers, sim.BackendAuto)
}

func runVerilogMode(t *testing.T, name, src string, workers int, mode sim.BackendMode) simOutcome {
	t.Helper()
	comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: name, Text: src})
	if !comp.OK {
		t.Fatalf("%s does not compile:\n%s\nsource:\n%s", name, comp.Log, src)
	}
	res, err := vsim.Simulate(comp.Modules, "tb", vsim.Options{
		Workers:      workers,
		CaptureFinal: true,
		Backend:      mode,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Fault != "" {
		t.Fatalf("%s faulted (harness designs must be valid): %s\nsource:\n%s", name, res.Fault, src)
	}
	return simOutcome{
		log:     res.Log,
		vcd:     res.VCD,
		events:  res.Events,
		endTime: uint64(res.EndTime),
		final:   res.Final,
		flags:   fmt.Sprintf("fin=%v stop=%v to=%v", res.Finished, res.Stopped, res.TimedOut),
		shards:  res.Shards,
	}
}

func diffOutcomes(t *testing.T, name string, ref, got simOutcome, workers int) {
	t.Helper()
	if got.log != ref.log {
		t.Errorf("%s: log differs at %d workers:\n--- serial ---\n%s\n--- %dw ---\n%s",
			name, workers, ref.log, workers, got.log)
	}
	if got.vcd != ref.vcd {
		t.Errorf("%s: VCD differs at %d workers", name, workers)
	}
	if got.events != ref.events {
		t.Errorf("%s: event count %d at %d workers, want %d", name, got.events, workers, ref.events)
	}
	if got.endTime != ref.endTime {
		t.Errorf("%s: end time %d at %d workers, want %d", name, got.endTime, workers, ref.endTime)
	}
	if got.flags != ref.flags {
		t.Errorf("%s: stop flags %q at %d workers, want %q", name, got.flags, workers, ref.flags)
	}
	for sig, want := range ref.final {
		if got.final[sig] != want {
			t.Errorf("%s: final %s = %s at %d workers, want %s", name, sig, got.final[sig], workers, want)
		}
	}
	if len(got.final) != len(ref.final) {
		t.Errorf("%s: %d final signals at %d workers, want %d", name, len(got.final), workers, len(ref.final))
	}
}

// genClusterDesign emits a random Verilog design of several independent
// clusters — distinct connectivity components with their own clocks,
// state, logging, and $random streams — plus a finisher process. The
// shapes cover the interactions most likely to diverge under sharding:
// NBA vs blocking assignment order, continuous-assignment chains,
// same-timestamp activity across components, $monitor, zero delays,
// and a $finish cut that truncates every component at the same delta.
func genClusterDesign(rng *rand.Rand) string {
	var sb strings.Builder
	nclusters := 2 + rng.Intn(3)
	ops := []string{"+", "-", "^", "&", "|"}
	for c := 0; c < nclusters; c++ {
		w := 4 + rng.Intn(13)
		period := 2 + rng.Intn(4)
		op1 := ops[rng.Intn(len(ops))]
		op2 := ops[rng.Intn(len(ops))]
		inc := 1 + rng.Intn(7)
		fmt.Fprintf(&sb, "module cluster%d;\n", c)
		fmt.Fprintf(&sb, "  reg clk; reg [%d:0] a, b;\n", w-1)
		fmt.Fprintf(&sb, "  wire [%d:0] m;\n", w-1)
		fmt.Fprintf(&sb, "  assign m = a %s b;\n", op2)
		fmt.Fprintf(&sb, "  initial begin clk = 0; a = 0; b = %d'd%d; end\n", w, rng.Intn(1<<uint(min(w, 16))))
		fmt.Fprintf(&sb, "  always #%d clk = ~clk;\n", period)
		sb.WriteString("  always @(posedge clk) begin\n")
		fmt.Fprintf(&sb, "    a <= a + %d;\n", inc)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, "    b <= b %s (a + %d);\n", op1, rng.Intn(5))
		} else {
			fmt.Fprintf(&sb, "    b = b %s a;\n", op1)
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, "    if (a[0]) b <= $random;\n")
		}
		fmt.Fprintf(&sb, "    $display(\"c%d a=%%0d b=%%0h m=%%0d t=%%0t\", a, b, m, $time);\n", c)
		sb.WriteString("  end\n")
		if rng.Intn(3) == 0 {
			// A second process in the same component, racing the first
			// through the shared delta schedule.
			fmt.Fprintf(&sb, "  always @(negedge clk) $display(\"c%d neg a=%%0d\", a);\n", c)
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, "  initial begin #%d $monitor(\"c%d mon m=%%0d t=%%0t\", m, $time); end\n", 1+rng.Intn(9), c)
		}
		sb.WriteString("endmodule\n")
	}
	sb.WriteString("module tb;\n")
	for c := 0; c < nclusters; c++ {
		fmt.Fprintf(&sb, "  cluster%d u%d();\n", c, c)
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("  initial begin $dumpfile(\"w.vcd\"); $dumpvars; end\n")
	}
	fmt.Fprintf(&sb, "  initial begin #%d $display(\"tb done t=%%0t\", $time); $finish; end\n", 20+rng.Intn(41))
	sb.WriteString("endmodule\n")
	return sb.String()
}

// TestDifferentialRandomClusters is the core of the harness: randomly
// generated multi-component designs, where sharding actually spreads
// work, compared across worker counts.
func TestDifferentialRandomClusters(t *testing.T) {
	designs := 24
	if testing.Short() {
		designs = 8
	}
	for i := 0; i < designs; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i*131)))
		src := genClusterDesign(rng)
		name := fmt.Sprintf("clusters-%d", i)
		ref := runVerilog(t, name, src, workerCounts[0])
		if !strings.Contains(ref.log, "$finish called") {
			t.Fatalf("%s: reference run did not finish:\n%s", name, ref.log)
		}
		for _, mode := range backendModes {
			for _, w := range workerCounts {
				if mode == sim.BackendCompiled && w == workerCounts[0] {
					continue // the reference itself
				}
				diffOutcomes(t, fmt.Sprintf("%s/%s", name, mode), ref, runVerilogMode(t, name, src, w, mode), w)
			}
		}
	}
}

// TestDifferentialBenchVerilog replays real bench-suite problems
// (golden DUT + reference testbench) through the backends. These are
// mostly single-component designs — the degenerate case the sharded
// backend must also get exactly right.
func TestDifferentialBenchVerilog(t *testing.T) {
	suite := bench.NewSuite()
	stride := 8
	if testing.Short() {
		stride = 32
	}
	for i := 0; i < len(suite.Problems); i += stride {
		p := suite.Problems[i]
		src := p.GoldenVerilog + "\n" + p.RefTBVerilog
		ref := runVerilog(t, p.ID, src, workerCounts[0])
		for _, mode := range backendModes {
			for _, w := range workerCounts {
				if mode == sim.BackendCompiled && w == workerCounts[0] {
					continue
				}
				diffOutcomes(t, fmt.Sprintf("%s/%s", p.ID, mode), ref, runVerilogMode(t, p.ID, src, w, mode), w)
			}
		}
	}
}

// TestDifferentialBenchVHDL does the same through the VHDL front-end.
func TestDifferentialBenchVHDL(t *testing.T) {
	suite := bench.NewSuite()
	stride := 12
	if testing.Short() {
		stride = 48
	}
	type vhdlOutcome struct {
		log     string
		events  uint64
		endTime uint64
		asserts int
		final   map[string]string
	}
	run := func(p *bench.Problem, workers int, mode sim.BackendMode) vhdlOutcome {
		src := p.GoldenVHDL + "\n" + p.RefTBVHDL
		comp := edatool.Compile(edatool.VHDL, edatool.Source{Name: p.ID + ".vhd", Text: src})
		if !comp.OK {
			t.Fatalf("%s does not compile:\n%s", p.ID, comp.Log)
		}
		res, err := vhdlsim.Simulate(comp.Units, "tb", vhdlsim.Options{
			Workers:      workers,
			CaptureFinal: true,
			Backend:      mode,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if res.Fault != "" {
			t.Fatalf("%s faulted: %s", p.ID, res.Fault)
		}
		return vhdlOutcome{
			log:     res.Log,
			events:  res.Events,
			endTime: uint64(res.EndTime),
			asserts: res.AssertErrors,
			final:   res.Final,
		}
	}
	for i := 0; i < len(suite.Problems); i += stride {
		p := suite.Problems[i]
		ref := run(p, workerCounts[0], sim.BackendCompiled)
		for _, mode := range backendModes {
			for _, w := range workerCounts {
				if mode == sim.BackendCompiled && w == workerCounts[0] {
					continue
				}
				got := run(p, w, mode)
				if got.log != ref.log {
					t.Errorf("%s: VHDL log differs at %d workers (%s):\n--- serial ---\n%s\n--- %dw ---\n%s",
						p.ID, w, mode, ref.log, w, got.log)
				}
				if got.events != ref.events || got.endTime != ref.endTime || got.asserts != ref.asserts {
					t.Errorf("%s: VHDL counters differ at %d workers (%s): %+v vs %+v", p.ID, w, mode, got, ref)
				}
				for sig, want := range ref.final {
					if got.final[sig] != want {
						t.Errorf("%s: VHDL final %s = %s at %d workers (%s), want %s", p.ID, sig, got.final[sig], w, mode, want)
					}
				}
			}
		}
	}
}

// genPartitionPair emits two behaviourally identical Verilog designs
// that the connectivity partitioner must treat very differently:
//
//   - "shared": every cluster's logic is clocked through one tb-level
//     clock wire fanned into cluster ports, so a chain of shared
//     signals forces the whole design into a single component.
//   - "split": the same clusters duplicate the clock generator locally
//     (same phase, same period) and ignore the still-connected port,
//     so each cluster is its own component and the design shards.
//
// Cluster hierarchies, signal names, widths, and value evolution are
// identical in both shapes, so logs, VCD, final values, end time, and
// stop flags must match byte for byte between the two — fuzzing the
// partition itself rather than the backend under one partition.
// $random is deliberately absent: its streams are seeded per component
// and the two shapes have different component structures by design.
func genPartitionPair(rng *rand.Rand) (shared, split string) {
	nclusters := 2 + rng.Intn(3)
	period := 1 + rng.Intn(3)
	ops := []string{"+", "-", "^", "&", "|"}
	clkgen := fmt.Sprintf(`
module clkgen(output reg clk);
  initial clk = 0;
  always #%d clk = ~clk;
endmodule
`, period)

	type cluster struct {
		w, inc, b0 int
		op1, op2   string
		edge       string
		partSel    bool
	}
	cs := make([]cluster, nclusters)
	for i := range cs {
		cs[i] = cluster{
			w:       4 + rng.Intn(13),
			inc:     1 + rng.Intn(7),
			b0:      rng.Intn(1 << 10),
			op1:     ops[rng.Intn(len(ops))],
			op2:     ops[rng.Intn(len(ops))],
			edge:    []string{"posedge", "negedge"}[rng.Intn(2)],
			partSel: rng.Intn(3) == 0,
		}
	}

	body := func(c int, clkSrc string) string {
		var sb strings.Builder
		k := cs[c]
		sb.WriteString(clkSrc)
		fmt.Fprintf(&sb, "  reg [%d:0] a, b;\n  wire [%d:0] m;\n", k.w-1, k.w-1)
		fmt.Fprintf(&sb, "  assign m = a %s b;\n", k.op2)
		fmt.Fprintf(&sb, "  initial begin a = 0; b = %d; end\n", k.b0)
		fmt.Fprintf(&sb, "  always @(%s clk) begin\n", k.edge)
		fmt.Fprintf(&sb, "    a <= a + %d;\n", k.inc)
		fmt.Fprintf(&sb, "    b <= b %s a;\n", k.op1)
		if k.partSel {
			fmt.Fprintf(&sb, "    b[1:0] <= a[1:0];\n")
		}
		fmt.Fprintf(&sb, "    $display(\"c%d a=%%0d b=%%0h m=%%0d t=%%0t\", a, b, m, $time);\n", c)
		sb.WriteString("  end\n")
		return sb.String()
	}

	finishAt := 20 + rng.Intn(41)
	emit := func(dup bool) string {
		var sb strings.Builder
		sb.WriteString(clkgen)
		for c := 0; c < nclusters; c++ {
			fmt.Fprintf(&sb, "module cluster%d(input clk_in);\n", c)
			if dup {
				// Duplicated clock: clk_in stays connected but unread,
				// so the cluster is its own connectivity component. The
				// X->0 initialization is emitted AFTER the cluster body so
				// the edge-sensitive process arms on an X baseline before
				// the init write lands — exactly the ordering the shared
				// shape's port-assign cascade produces.
				sb.WriteString(body(c, fmt.Sprintf("  reg clk;\n  always #%d clk = ~clk;\n", period)))
				sb.WriteString("  initial clk = 0;\n")
			} else {
				sb.WriteString(body(c, "  wire clk;\n  assign clk = clk_in;\n"))
				// Filler so both shapes have identical line numbering:
				// $finish reports its source line in the log.
				sb.WriteString("  // clk mirrors the shared port\n")
			}
			sb.WriteString("endmodule\n")
		}
		sb.WriteString("module tb;\n  wire clk;\n  clkgen g(.clk(clk));\n")
		for c := 0; c < nclusters; c++ {
			fmt.Fprintf(&sb, "  cluster%d u%d(.clk_in(clk));\n", c, c)
		}
		sb.WriteString("  initial begin $dumpfile(\"w.vcd\"); $dumpvars; end\n")
		fmt.Fprintf(&sb, "  initial begin #%d $display(\"tb done t=%%0t\", $time); $finish; end\n", finishAt)
		sb.WriteString("endmodule\n")
		return sb.String()
	}

	// Both emit calls must see identical rng state; the generator only
	// draws before this point.
	return emit(false), emit(true)
}

// TestDifferentialPartitionShapes fuzzes the partition itself: the
// shared (one-component) and split (many-component) shapes of the same
// behaviour must produce byte-identical logs, VCD, final values, end
// times, and stop flags — across each other and across worker counts.
func TestDifferentialPartitionShapes(t *testing.T) {
	designs := 12
	if testing.Short() {
		designs = 4
	}
	for i := 0; i < designs; i++ {
		rng := rand.New(rand.NewSource(int64(31000 + i*271)))
		sharedSrc, splitSrc := genPartitionPair(rng)
		name := fmt.Sprintf("partition-%d", i)

		refShared := runVerilog(t, name+"-shared", sharedSrc, 1)
		refSplit := runVerilog(t, name+"-split", splitSrc, 1)
		if !strings.Contains(refShared.log, "$finish called") {
			t.Fatalf("%s: shared reference did not finish:\n%s", name, refShared.log)
		}

		// Cross-shape: identical observable behaviour. Event counts are
		// excluded (the shapes run different processes to produce it).
		if refShared.log != refSplit.log {
			t.Errorf("%s: log differs between shapes:\n--- shared ---\n%s\n--- split ---\n%s",
				name, refShared.log, refSplit.log)
		}
		if refShared.vcd != refSplit.vcd {
			t.Errorf("%s: VCD differs between shapes:\n--- shared ---\n%s\n--- split ---\n%s",
				name, refShared.vcd, refSplit.vcd)
		}
		if refShared.endTime != refSplit.endTime || refShared.flags != refSplit.flags {
			t.Errorf("%s: end state differs between shapes: (%d, %s) vs (%d, %s)",
				name, refShared.endTime, refShared.flags, refSplit.endTime, refSplit.flags)
		}
		for sig, want := range refShared.final {
			if got, ok := refSplit.final[sig]; ok && got != want {
				t.Errorf("%s: final %s = %s in split shape, want %s", name, sig, got, want)
			}
		}

		// The shapes must actually partition differently: the clusters
		// collapse into the clock component in the shared shape (only
		// the signal-less service initials stay separate) and spread in
		// the split one, so at 4 workers the split shape must run on
		// strictly more shards.
		shShared := runVerilog(t, name+"-shared", sharedSrc, 4)
		shSplit := runVerilog(t, name+"-split", splitSrc, 4)
		if shSplit.shards <= shShared.shards {
			t.Errorf("%s: split shape ran on %d shards vs shared's %d, want strictly more (partition fuzz premise broken)",
				name, shSplit.shards, shShared.shards)
		}

		// Within each shape: the standard worker-count sweep.
		for _, w := range workerCounts[1:] {
			diffOutcomes(t, name+"-shared", refShared, runVerilog(t, name+"-shared", sharedSrc, w), w)
			diffOutcomes(t, name+"-split", refSplit, runVerilog(t, name+"-split", splitSrc, w), w)
		}
	}
}

// TestDifferentialRepeatable pins run-to-run determinism of the
// parallel backend itself: the same design at the same worker count
// twice must agree byte for byte (goroutine scheduling must never leak
// into output).
func TestDifferentialRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	src := genClusterDesign(rng)
	for _, w := range workerCounts {
		a := runVerilog(t, "repeat", src, w)
		b := runVerilog(t, "repeat", src, w)
		diffOutcomes(t, "repeat", a, b, w)
	}
}
