package sim

import "testing"

// TestKernelNoPerDeltaAllocs pins the hot-loop guarantee documented on
// Kernel: once the region buffers have grown, a steady-state run of
// active->NBA->active delta cycles performs no per-delta allocations.
func TestKernelNoPerDeltaAllocs(t *testing.T) {
	k := NewKernel()
	const deltas = 1000
	n := 0
	var act, nbaFn func()
	act = func() {
		n++
		if n < deltas {
			k.NBA(nbaFn)
		}
	}
	nbaFn = func() { k.Active(act) }

	// Warm-up run grows the active/nba backing arrays to steady state.
	k.Active(act)
	if r := k.Run(); r != StopIdle {
		t.Fatalf("warm-up run stopped with %v", r)
	}
	if n != deltas {
		t.Fatalf("warm-up ran %d deltas, want %d", n, deltas)
	}

	avg := testing.AllocsPerRun(5, func() {
		n = 0
		k.Active(act)
		if r := k.Run(); r != StopIdle {
			t.Fatalf("run stopped with %v", r)
		}
	})
	// Each measured run is `deltas` delta cycles; any per-delta
	// allocation would show up as >= deltas allocs per run.
	if avg > 1 {
		t.Errorf("allocs per %d-delta run = %v, want <= 1 (per-delta allocation regression)", deltas, avg)
	}
}

// TestProcessStepZeroAllocs pins the continuation-kernel guarantee: a
// steady-state process step — dispatch, Delay reschedule, future-heap
// push/pop, time advance — allocates nothing. CI's alloc guard runs
// this (and its vsim counterpart) to catch regressions on the
// per-step dispatch path.
func TestProcessStepZeroAllocs(t *testing.T) {
	k := NewKernel()
	const steps = 1000
	n := 0
	proc := k.NewProcess("clock", func(p *Process) {
		n++
		if n >= steps {
			return // suspend with nothing scheduled: the run goes idle
		}
		p.Delay(1)
	})
	// Warm-up run grows the kernel buffers to steady state.
	if r := k.Run(); r != StopIdle {
		t.Fatalf("warm-up run stopped with %v", r)
	}
	if n != steps {
		t.Fatalf("warm-up ran %d steps, want %d", n, steps)
	}
	avg := testing.AllocsPerRun(5, func() {
		n = 0
		proc.Activate()
		if r := k.Run(); r != StopIdle {
			t.Fatalf("run stopped with %v", r)
		}
	})
	if avg >= 1 {
		t.Errorf("allocs per %d-step run = %v, want < 1 (per-step allocation regression)", steps, avg)
	}
}
