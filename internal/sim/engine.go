package sim

import "sync"

// Engine sequences one or more kernels through the event-driven run
// loop. With a single kernel it is the familiar serial scheduler; with
// several it is the sharded parallel backend: each kernel owns one
// shard of the design (a disjoint set of signals and processes, see
// Partition) and the engine runs every shard's delta cycle concurrently
// under a two-barrier lockstep protocol:
//
//	for each time step:
//	  while any shard has active events or pending NBA updates:
//	    barrier: every shard drains its active region   (parallel)
//	    barrier: every shard applies its NBA updates    (parallel)
//	  advance all shards to the global minimum next event time
//
// Because shards share no signals, the only cross-shard interactions
// are the barriers themselves and the global time advance, so the
// per-shard execution (and therefore all observable output) is
// identical to the single-kernel schedule. Stop requests (Finish,
// faults, limits) are honoured at delta boundaries — the same cut
// point in every configuration — which is what makes serial and
// sharded runs byte-identical and is verified by the differential
// harness (differential_test.go).
type Engine struct {
	kernels []*Kernel

	// Workers caps the number of concurrently executing shards.
	// Values <= 1 run every shard on the calling goroutine.
	Workers int

	// Limits guard against runaway simulations; see Kernel.
	MaxTime   Time
	MaxDeltas int
	MaxEvents uint64

	// AfterDelta, when non-nil, runs at every delta boundary (after
	// NBA application, and once more at a finish/limit cut) with all
	// shards quiescent. Front-ends use it for cross-shard bookkeeping
	// that must happen at a deterministic point, such as enabling the
	// VCD dump.
	AfterDelta func()

	now    Time
	serial uint64 // run-global delta counter, mirrored into every kernel
}

// NewEngine returns an engine over the given shard kernels with
// generous default limits (the same defaults as NewKernel).
func NewEngine(kernels []*Kernel, workers int) *Engine {
	return &Engine{
		kernels:   kernels,
		Workers:   workers,
		MaxTime:   1_000_000,
		MaxDeltas: 10_000,
		MaxEvents: 50_000_000,
	}
}

// Now returns the engine's current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the total number of events executed across all shards.
func (e *Engine) Events() uint64 {
	var n uint64
	for _, k := range e.kernels {
		n += k.eventCount
	}
	return n
}

// Fault returns the first recorded shard fault in shard order, or "".
// Shard order is deterministic (it does not depend on scheduling), so
// multi-fault runs report the same fault in every configuration.
func (e *Engine) Fault() string {
	for _, k := range e.kernels {
		if k.fault != "" {
			return k.fault
		}
	}
	return ""
}

func (e *Engine) anyPending() bool {
	for _, k := range e.kernels {
		if k.pending() {
			return true
		}
	}
	return false
}

func (e *Engine) anyFinished() bool {
	for _, k := range e.kernels {
		if k.finished {
			return true
		}
	}
	return false
}

func (e *Engine) anyOverrun() bool {
	for _, k := range e.kernels {
		if k.overrun {
			return true
		}
	}
	return false
}

// stop runs the boundary hook once more before a mid-time-step abort
// (finish, delta/event limit) returns. Requests made during the final
// delta — e.g. a $dumpvars sharing its delta with $finish — must still
// be honoured at the cut, with every shard paused.
func (e *Engine) stop(r StopReason) StopReason {
	if e.AfterDelta != nil {
		e.AfterDelta()
	}
	return r
}

// Run executes events until quiescence, Finish, or a limit.
func (e *Engine) Run() StopReason {
	if e.serial == 0 {
		// Serial 0 is reserved as the "never changed" stamp value
		// front-ends store in fresh signals.
		e.serial = 1
	}
	var pool *phasePool
	if w := min(e.Workers, len(e.kernels)); w > 1 {
		pool = newPhasePool(e.kernels, w, e.MaxEvents)
		defer pool.close()
	}
	for {
		deltas := 0
		for e.anyPending() {
			for _, k := range e.kernels {
				k.delta = int32(deltas)
				k.serial = e.serial
			}
			if pool != nil {
				pool.run(phaseActive)
			} else {
				for _, k := range e.kernels {
					k.drainActive(e.MaxEvents)
				}
			}
			// The event budget is enforced on the SUM over shards at the
			// delta boundary: per-shard totals depend on how components
			// were grouped, but the sum is order-independent and thus
			// identical in every worker configuration — required for
			// budget-aborted runs to stay byte-identical too. The
			// per-kernel count inside drainActive is only the backstop
			// for an event loop that never reaches this boundary.
			if e.anyOverrun() || e.Events() > e.MaxEvents {
				return e.stop(StopEvents)
			}
			if e.anyFinished() {
				return e.stop(StopFinish)
			}
			if pool != nil {
				pool.run(phaseNBA)
			} else {
				for _, k := range e.kernels {
					k.applyNBA()
				}
			}
			if e.anyFinished() {
				return e.stop(StopFinish)
			}
			if e.AfterDelta != nil {
				e.AfterDelta()
			}
			deltas++
			e.serial++
			if deltas > e.MaxDeltas {
				return e.stop(StopDeltas)
			}
		}
		next := Time(0)
		have := false
		for _, k := range e.kernels {
			if t, ok := k.nextTime(); ok && (!have || t < next) {
				next, have = t, true
			}
		}
		if !have {
			return StopIdle
		}
		if next > e.MaxTime {
			return StopTimeout
		}
		e.now = next
		for _, k := range e.kernels {
			k.advanceTo(next)
		}
	}
}

// ---------------------------------------------------------------- pool

const (
	phaseActive uint8 = iota
	phaseNBA
)

// phasePool is the persistent worker set behind a parallel engine run.
// Worker n owns kernels n, n+W, n+2W, ...; a phase is dispatched by one
// channel send per worker and completes at the WaitGroup barrier. The
// channel send/receive and Wait provide the happens-before edges that
// order the engine's bookkeeping writes (delta index, limits) against
// the workers' kernel mutations, so lockstep runs are race-free.
type phasePool struct {
	kernels []*Kernel
	budget  uint64
	phase   []chan uint8
	wg      sync.WaitGroup
}

func newPhasePool(kernels []*Kernel, workers int, budget uint64) *phasePool {
	p := &phasePool{kernels: kernels, budget: budget}
	for n := 0; n < workers; n++ {
		ch := make(chan uint8, 1)
		p.phase = append(p.phase, ch)
		go func(n int) {
			for ph := range ch {
				for i := n; i < len(p.kernels); i += workers {
					if ph == phaseActive {
						p.kernels[i].drainActive(p.budget)
					} else {
						p.kernels[i].applyNBA()
					}
				}
				p.wg.Done()
			}
		}(n)
	}
	return p
}

func (p *phasePool) run(ph uint8) {
	p.wg.Add(len(p.phase))
	for _, ch := range p.phase {
		ch <- ph
	}
	p.wg.Wait()
}

func (p *phasePool) close() {
	for _, ch := range p.phase {
		close(ch)
	}
}
