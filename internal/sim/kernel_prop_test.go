package sim

import (
	"testing"
	"testing/quick"
)

// TestQuickScheduleOrderingProperty: events always run in nondecreasing
// time order, and FIFO within a timestamp.
func TestQuickScheduleOrderingProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 || len(delays) > 40 {
			return true
		}
		k := NewKernel()
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, d := range delays {
			i, d := i, Time(d)
			k.Schedule(d, func() {
				got = append(got, stamp{at: k.Now(), seq: i})
			})
		}
		if k.Run() != StopIdle {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			// FIFO within a time slot: sequence numbers increase.
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickProcessDelaysAccumulate: a process's delays always sum.
func TestQuickProcessDelaysAccumulate(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) > 20 {
			steps = steps[:20]
		}
		k := NewKernel()
		var want Time
		for _, s := range steps {
			want += Time(s)
		}
		var got Time
		pc := 0
		k.NewProcess("p", func(p *Process) {
			if pc < len(steps) {
				d := Time(steps[pc])
				pc++
				p.Delay(d)
				return
			}
			got = k.Now()
			p.Terminate()
		})
		k.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStopReasonStrings(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopIdle: "idle", StopFinish: "finish", StopTimeout: "timeout",
		StopDeltas: "delta-limit", StopEvents: "event-limit",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestSetFaultKeepsFirst(t *testing.T) {
	k := NewKernel()
	k.SetFault("first")
	k.SetFault("second")
	if k.Fault() != "first" {
		t.Errorf("fault = %q", k.Fault())
	}
	if !k.Finished() {
		t.Error("fault must stop the kernel")
	}
}
