package sim

import (
	"fmt"
	"sort"
)

// OutBuf collects observable output (simulation log text, VCD value
// changes) as chunks tagged with the lockstep coordinates at which they
// were produced: (time, delta, phase, component). Each shard writes
// into its own OutBuf with no synchronization; after the run,
// MergeChunks orders all shards' chunks by their coordinates.
//
// Because a component executes on exactly one shard and its events run
// in the same relative order in every configuration, the per-component
// chunk subsequences are identical whether the design ran on one kernel
// or many — so the merged output is byte-identical for any worker
// count. The component index (not the shard index) is the sort key
// precisely because it is the stable one.
type OutBuf struct {
	chunks []Chunk
}

// Chunk is one run of output produced at a single lockstep coordinate
// by a single component.
type Chunk struct {
	Time  Time
	Delta int32
	Phase uint8
	Comp  int32
	Buf   []byte
}

func (c *Chunk) key(k *Kernel, comp int32) bool {
	return c.Time == k.now && c.Delta == k.delta && c.Phase == k.Phase() && c.Comp == comp
}

// buf returns the chunk to append to for component comp at the
// kernel's current coordinates, extending the chunk list only when the
// coordinates moved (consecutive writes coalesce, so steady-state
// logging does not grow the list per write).
func (o *OutBuf) buf(k *Kernel, comp int32) *Chunk {
	if n := len(o.chunks); n > 0 && o.chunks[n-1].key(k, comp) {
		return &o.chunks[n-1]
	}
	o.chunks = append(o.chunks, Chunk{Time: k.now, Delta: k.delta, Phase: k.Phase(), Comp: comp})
	return &o.chunks[len(o.chunks)-1]
}

// Append records text for component comp at the kernel's current
// lockstep coordinates and returns the number of bytes written.
func (o *OutBuf) Append(k *Kernel, comp int32, text string) int {
	c := o.buf(k, comp)
	c.Buf = append(c.Buf, text...)
	return len(text)
}

// Appendf records formatted text for component comp and returns the
// number of bytes written.
func (o *OutBuf) Appendf(k *Kernel, comp int32, format string, args ...any) int {
	c := o.buf(k, comp)
	before := len(c.Buf)
	c.Buf = fmt.Appendf(c.Buf, format, args...)
	return len(c.Buf) - before
}

// Len returns the total number of buffered bytes.
func (o *OutBuf) Len() int {
	n := 0
	for i := range o.chunks {
		n += len(o.chunks[i].Buf)
	}
	return n
}

// MergeChunks orders the chunks of all shards' buffers by
// (time, delta, phase, component). The sort is stable and a component
// lives on exactly one shard, so chunks of one component keep their
// execution order.
func MergeChunks(bufs ...*OutBuf) []Chunk {
	var all []Chunk
	for _, b := range bufs {
		all = append(all, b.chunks...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Delta != b.Delta {
			return a.Delta < b.Delta
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Comp < b.Comp
	})
	return all
}

// RenderChunks concatenates merged chunks into the final output text.
func RenderChunks(chunks []Chunk) string {
	n := 0
	for i := range chunks {
		n += len(chunks[i].Buf)
	}
	out := make([]byte, 0, n)
	for i := range chunks {
		out = append(out, chunks[i].Buf...)
	}
	return string(out)
}
