package sim

import "fmt"

// Time is simulated time in arbitrary units (the front-ends use 1 = 1ns).
type Time uint64

// futureEvent is a callback scheduled at an absolute time.
type futureEvent struct {
	at  Time
	seq uint64 // FIFO tiebreak within one time
	fn  func()
}

// futureQueue is a binary min-heap ordered by (at, seq). It is
// hand-rolled rather than built on container/heap so pushes and pops
// move futureEvent values directly instead of boxing them through
// interface{} — the time wheel is hot and must not allocate per event.
type futureQueue []futureEvent

func (q futureQueue) Len() int { return len(q) }

func (q futureQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *futureQueue) push(ev futureEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *futureQueue) pop() futureEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = futureEvent{} // release the closure
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopIdle    StopReason = iota // no events left
	StopFinish                    // a process called Finish ($finish)
	StopTimeout                   // simulated-time limit reached
	StopDeltas                    // delta-cycle limit exceeded (oscillation)
	StopEvents                    // total event budget exceeded
)

func (r StopReason) String() string {
	switch r {
	case StopIdle:
		return "idle"
	case StopFinish:
		return "finish"
	case StopTimeout:
		return "timeout"
	case StopDeltas:
		return "delta-limit"
	default:
		return "event-limit"
	}
}

// Kernel is the simulation scheduler.
//
// The active and nba regions reuse their backing arrays across delta
// cycles: active drains through a cursor and is reset to length zero
// once empty, and nba swaps between two buffers, so a steady-state
// simulation schedules millions of events with no per-delta allocation.
type Kernel struct {
	now        Time
	seq        uint64
	future     futureQueue
	active     []func()
	activeHead int // next unconsumed index into active
	nba        []func()
	nbaSpare   []func() // drained buffer recycled into nba
	finished   bool

	// Limits guard against runaway simulations of buggy generated RTL.
	MaxTime   Time
	MaxDeltas int
	MaxEvents uint64

	eventCount uint64
	procs      []*Proc
	fault      string
}

// Fault returns the message of a runtime fault raised by a process
// (an interpreter error on malformed RTL), or "".
func (k *Kernel) Fault() string { return k.fault }

// SetFault records a runtime fault and stops the simulation.
func (k *Kernel) SetFault(msg string) {
	if k.fault == "" {
		k.fault = msg
	}
	k.finished = true
}

// Shutdown terminates every live process goroutine. Call once after Run
// returns; the kernel is unusable afterwards.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if !p.dead {
			p.killed = true
			p.step()
		}
	}
}

// NewKernel returns a kernel with generous default limits.
func NewKernel() *Kernel {
	return &Kernel{
		MaxTime:   1_000_000,
		MaxDeltas: 10_000,
		MaxEvents: 50_000_000,
	}
}

// Now returns current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn to run at now+delay in the active region.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay == 0 {
		k.Active(fn)
		return
	}
	k.seq++
	k.future.push(futureEvent{at: k.now + delay, seq: k.seq, fn: fn})
}

// Active queues fn into the current delta's active region.
func (k *Kernel) Active(fn func()) { k.active = append(k.active, fn) }

// NBA queues an update into the nonblocking-assignment region of the
// current time slot.
func (k *Kernel) NBA(fn func()) { k.nba = append(k.nba, fn) }

// Finish requests simulation stop at the end of the current event.
func (k *Kernel) Finish() { k.finished = true }

// Finished reports whether Finish has been called.
func (k *Kernel) Finished() bool { return k.finished }

// Run executes events until quiescence, Finish, or a limit.
func (k *Kernel) Run() StopReason {
	for {
		deltas := 0
		for k.activeHead < len(k.active) || len(k.nba) > 0 {
			// Drain the active region FIFO; events may append more.
			for k.activeHead < len(k.active) {
				ev := k.active[k.activeHead]
				k.active[k.activeHead] = nil // release the closure
				k.activeHead++
				k.eventCount++
				if k.eventCount > k.MaxEvents {
					return StopEvents
				}
				ev()
				if k.finished {
					return StopFinish
				}
			}
			// Fully consumed: rewind so the backing array is reused.
			k.active = k.active[:0]
			k.activeHead = 0
			// Apply NBA updates; these typically reactivate processes.
			// Swap in the spare buffer so updates scheduling new NBAs
			// append into recycled storage.
			if len(k.nba) > 0 {
				updates := k.nba
				k.nba = k.nbaSpare[:0]
				for _, u := range updates {
					u()
				}
				for i := range updates {
					updates[i] = nil
				}
				k.nbaSpare = updates[:0]
				if k.finished {
					return StopFinish
				}
			}
			deltas++
			if deltas > k.MaxDeltas {
				return StopDeltas
			}
		}
		if k.future.Len() == 0 {
			return StopIdle
		}
		next := k.future.pop()
		if next.at > k.MaxTime {
			return StopTimeout
		}
		k.now = next.at
		k.Active(next.fn)
		// Pull in all events at the same timestamp.
		for k.future.Len() > 0 && k.future[0].at == k.now {
			k.Active(k.future.pop().fn)
		}
	}
}

// ---------------------------------------------------------------- procs

// Proc is a cooperative process coroutine. The body runs on its own
// goroutine but only while the kernel is blocked waiting for it, so at
// most one goroutine is ever executing simulation code.
type Proc struct {
	Name   string
	k      *Kernel
	resume chan struct{}
	yield  chan struct{}
	dead   bool
	killed bool
	stepFn func() // pre-built {p.step()} closure, so Delay/Activate don't allocate
}

// SpawnProcess creates a process and schedules its first activation in
// the current active region.
func (k *Kernel) SpawnProcess(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		Name:   name,
		k:      k,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.stepFn = p.step
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume // wait for first activation
		if p.killed {
			p.dead = true
			p.yield <- struct{}{}
			return
		}
		defer func() {
			p.dead = true
			// TerminateProcess is the clean unwind sentinel; any other
			// panic is an interpreter fault on malformed RTL, recorded
			// as a simulation fatal instead of crashing the harness.
			if r := recover(); r != nil {
				if _, ok := r.(TerminateProcess); !ok {
					k.SetFault(fmt.Sprintf("simulation fatal in process %s: %v", name, r))
				}
			}
			p.yield <- struct{}{}
		}()
		body(p)
	}()
	k.Active(p.stepFn)
	return p
}

// TerminateProcess is the panic sentinel a process body may raise to
// unwind itself cleanly (e.g. after $finish).
type TerminateProcess struct{}

// step resumes the process and waits for it to yield or terminate.
func (p *Proc) step() {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// suspend blocks the process body until the scheduler resumes it again.
// Must only be called from inside the process goroutine.
func (p *Proc) suspend() {
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(TerminateProcess{})
	}
}

// Delay suspends the process for d time units.
func (p *Proc) Delay(d Time) {
	p.k.Schedule(d, p.stepFn)
	if d == 0 {
		// Zero delay still yields to the end of the active queue.
	}
	p.suspend()
}

// WaitActivation suspends the process until someone calls Activate.
// Used for event-control waits: the interpreter registers the process
// with its signal sensitivity machinery and then calls WaitActivation.
func (p *Proc) WaitActivation() { p.suspend() }

// Activate schedules the process to resume in the active region.
func (p *Proc) Activate() {
	if p.dead {
		return
	}
	p.k.Active(p.stepFn)
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Dead reports whether the process body has returned.
func (p *Proc) Dead() bool { return p.dead }
