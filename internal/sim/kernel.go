package sim

import "fmt"

// Time is simulated time in arbitrary units (the front-ends use 1 = 1ns).
type Time uint64

// futureEvent is a callback scheduled at an absolute time.
type futureEvent struct {
	at  Time
	seq uint64 // FIFO tiebreak within one time
	fn  func()
}

// futureQueue is a binary min-heap ordered by (at, seq). It is
// hand-rolled rather than built on container/heap so pushes and pops
// move futureEvent values directly instead of boxing them through
// interface{} — the time wheel is hot and must not allocate per event.
type futureQueue []futureEvent

func (q futureQueue) Len() int { return len(q) }

func (q futureQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *futureQueue) push(ev futureEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *futureQueue) pop() futureEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = futureEvent{} // release the closure
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopIdle    StopReason = iota // no events left
	StopFinish                    // a process called Finish ($finish)
	StopTimeout                   // simulated-time limit reached
	StopDeltas                    // delta-cycle limit exceeded (oscillation)
	StopEvents                    // total event budget exceeded
)

func (r StopReason) String() string {
	switch r {
	case StopIdle:
		return "idle"
	case StopFinish:
		return "finish"
	case StopTimeout:
		return "timeout"
	case StopDeltas:
		return "delta-limit"
	default:
		return "event-limit"
	}
}

// Kernel is the event scheduler of one simulation shard.
//
// A kernel no longer owns the top-level run loop: it exposes the delta
// phases (drainActive, applyNBA) and time-wheel steps (nextTime,
// advanceTo) that an Engine sequences — serially for one kernel, in
// barrier-synchronized lockstep for many (see engine.go). Kernel.Run
// remains the single-shard convenience entry point.
//
// The active and nba regions reuse their backing arrays across delta
// cycles: active drains through a cursor and is reset to length zero
// once empty, and nba swaps between two buffers, so a steady-state
// simulation schedules millions of events with no per-delta allocation.
type Kernel struct {
	now        Time
	seq        uint64
	future     futureQueue
	active     []func()
	activeHead int // next unconsumed index into active
	nba        []NBARecord
	nbaSpare   []NBARecord  // drained buffer recycled into nba
	recFree    []*NBARecord // pooled delayed-update records (see update.go)
	finished   bool

	// Lockstep position, maintained by the engine: the current delta
	// index within the time step, the region being executed, and the
	// run-global delta serial number (identical across all shards of a
	// run). Output recorded during execution is tagged with
	// (now, delta, phase) so sharded runs merge deterministically (see
	// outbuf.go); front-ends use the serial for change-observation
	// semantics such as VHDL 'event.
	delta   int32
	serial  uint64
	inNBA   bool
	overrun bool // event budget exhausted mid-drain

	// Limits guard against runaway simulations of buggy generated RTL.
	// When the kernel is driven by an Engine, the engine's limits
	// govern; these are used by the single-kernel Run entry point.
	MaxTime   Time
	MaxDeltas int
	MaxEvents uint64

	eventCount uint64
	fault      string
	self       *Engine // cached single-kernel engine backing Run
}

// Fault returns the message of a runtime fault raised by a process
// (an interpreter error on malformed RTL), or "".
func (k *Kernel) Fault() string { return k.fault }

// SetFault records a runtime fault and stops the simulation.
func (k *Kernel) SetFault(msg string) {
	if k.fault == "" {
		k.fault = msg
	}
	k.finished = true
}

// NewKernel returns a kernel with generous default limits.
func NewKernel() *Kernel {
	return &Kernel{
		MaxTime:   1_000_000,
		MaxDeltas: 10_000,
		MaxEvents: 50_000_000,
	}
}

// Now returns current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Delta returns the index of the delta cycle currently executing within
// the current time step.
func (k *Kernel) Delta() int32 { return k.delta }

// Phase returns 0 during the active region and 1 during the NBA region
// of the current delta.
func (k *Kernel) Phase() uint8 {
	if k.inNBA {
		return 1
	}
	return 0
}

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.eventCount }

// DeltaSerial returns the run-global serial number of the delta cycle
// currently executing. Unlike Delta it never resets, and it is
// identical across every shard of a run, so it is safe to use for
// cross-configuration-deterministic change stamps.
func (k *Kernel) DeltaSerial() uint64 { return k.serial }

// ObserverSerial returns the delta serial at which effects of the
// currently executing event become observable to awakened processes:
// the current delta during the active region (watchers fire into the
// same drain), the next one during the NBA region.
func (k *Kernel) ObserverSerial() uint64 {
	if k.inNBA {
		return k.serial + 1
	}
	return k.serial
}

// Schedule queues fn to run at now+delay in the active region.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay == 0 {
		k.Active(fn)
		return
	}
	k.seq++
	k.future.push(futureEvent{at: k.now + delay, seq: k.seq, fn: fn})
}

// Active queues fn into the current delta's active region.
func (k *Kernel) Active(fn func()) { k.active = append(k.active, fn) }

// NBA queues a plain closure into the nonblocking-assignment region of
// the current time slot. It shares the typed record queue (see
// update.go), so closures and records interleave in schedule order;
// hot paths should prefer NBAPut, which needs no closure allocation.
func (k *Kernel) NBA(fn func()) {
	r := k.NBAPut()
	r.Apply = nbaApply
	r.Sig = fn
}

// Finish requests simulation stop at the end of the current event.
func (k *Kernel) Finish() { k.finished = true }

// Finished reports whether Finish has been called.
func (k *Kernel) Finished() bool { return k.finished }

// Run executes events until quiescence, Finish, or a limit. It is the
// single-shard entry point: an Engine over one kernel, inheriting the
// kernel's own limits. The engine is cached so repeated Run calls on a
// warm kernel stay allocation-free (pinned by TestProcessStepZeroAllocs).
func (k *Kernel) Run() StopReason {
	if k.self == nil {
		k.self = &Engine{kernels: []*Kernel{k}}
	}
	k.self.MaxTime = k.MaxTime
	k.self.MaxDeltas = k.MaxDeltas
	k.self.MaxEvents = k.MaxEvents
	return k.self.Run()
}

// pending reports whether the kernel has work left in the current time
// step (unconsumed active events or queued NBA updates).
func (k *Kernel) pending() bool {
	return k.activeHead < len(k.active) || len(k.nba) > 0
}

// drainActive runs the active-region FIFO to exhaustion; events may
// append more, which run in the same drain (same delta). A Finish or
// fault does NOT abort the drain: stop requests take effect at the
// delta boundary, so every shard of a lockstep run cuts its output at
// the same, deterministic point regardless of event interleaving. Only
// the event budget aborts mid-drain, since an event that unconditionally
// reactivates itself would otherwise never reach the boundary.
func (k *Kernel) drainActive(budget uint64) {
	for k.activeHead < len(k.active) {
		ev := k.active[k.activeHead]
		k.active[k.activeHead] = nil // release the closure
		k.activeHead++
		k.eventCount++
		if k.eventCount > budget {
			k.overrun = true
			return
		}
		ev()
	}
	// Fully consumed: rewind so the backing array is reused.
	k.active = k.active[:0]
	k.activeHead = 0
}

// applyNBA applies the queued nonblocking-assignment updates of the
// current delta, in schedule order. Updates typically reactivate
// processes into the next delta's active region. The spare buffer is
// swapped in so updates scheduling new NBAs append into recycled
// storage; the drained records themselves are recycled too, so a
// steady-state run never allocates here. Applied records are zeroed
// before the buffer is parked as the spare — the same
// release-the-closure discipline the func() queue had, extended to the
// signal and value references a record carries.
func (k *Kernel) applyNBA() {
	if len(k.nba) == 0 {
		return
	}
	updates := k.nba
	k.nba = k.nbaSpare[:0]
	k.inNBA = true
	for i := range updates {
		r := &updates[i]
		r.Apply(r)
		*r = NBARecord{}
	}
	k.inNBA = false
	k.nbaSpare = updates[:0]
}

// nextTime returns the earliest scheduled future time, if any.
func (k *Kernel) nextTime() (Time, bool) {
	if k.future.Len() == 0 {
		return 0, false
	}
	return k.future[0].at, true
}

// advanceTo moves the kernel to time t and pulls every event scheduled
// at exactly t into the active region, in schedule order.
func (k *Kernel) advanceTo(t Time) {
	k.now = t
	k.delta = 0
	for k.future.Len() > 0 && k.future[0].at == t {
		k.Active(k.future.pop().fn)
	}
}

// ---------------------------------------------------------------- procs

// Process is a simulation process in continuation-passing form. Its
// suspended state lives in an explicit value owned by the front-end
// interpreter (a program counter plus a frame stack), not in a blocked
// goroutine stack: each activation is a plain call of the step function,
// which runs the process up to its next suspension point (a delay or
// event-control wait) and returns after arranging its own reactivation.
// No goroutine or channel exists per process, so a kernel is fully
// dismantled by letting it go out of scope.
type Process struct {
	Name   string
	k      *Kernel
	dead   bool
	step   func(p *Process)
	stepFn func() // pre-built dispatch closure, so Delay/Activate don't allocate
}

// NewProcess registers a process whose continuation is step and
// schedules its first activation in the current active region. A panic
// inside step is recovered at the dispatch boundary: TerminateProcess
// unwinds cleanly (the process is marked dead); any other panic is an
// interpreter fault on malformed RTL, recorded as a simulation fatal
// instead of crashing the harness.
func (k *Kernel) NewProcess(name string, step func(p *Process)) *Process {
	p := &Process{Name: name, k: k, step: step}
	p.stepFn = func() {
		if p.dead {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				p.dead = true
				if _, ok := r.(TerminateProcess); !ok {
					k.SetFault(fmt.Sprintf("simulation fatal in process %s: %v", name, r))
				}
			}
		}()
		p.step(p)
	}
	k.Active(p.stepFn)
	return p
}

// TerminateProcess is the panic sentinel a process step may raise to
// unwind itself cleanly (e.g. after $finish).
type TerminateProcess struct{}

// Delay schedules the process to step again after d time units. The
// caller must return from its step function afterwards; the suspended
// continuation is whatever state it left behind.
//
// Delay(0) is a yield, not a no-op: the process is rescheduled at the
// tail of the current active region, so every other event already
// queued in this delta (including processes spawned later) runs before
// the process resumes. This is the IEEE 1364 `#0` ordering and is
// pinned by TestZeroDelayYieldsFIFO.
func (p *Process) Delay(d Time) { p.k.Schedule(d, p.stepFn) }

// Activate schedules the process to step again in the active region.
// Event-control waits use this as the resume hook: the interpreter
// registers it with its signal sensitivity machinery and returns.
func (p *Process) Activate() {
	if p.dead {
		return
	}
	p.k.Active(p.stepFn)
}

// Terminate marks the process dead; pending activations become no-ops.
func (p *Process) Terminate() { p.dead = true }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Dead reports whether the process has terminated.
func (p *Process) Dead() bool { return p.dead }
