package sim

import "fmt"

// Backend selection seam. The kernel schedules opaque process
// continuations (Process.stepFn), so compiled and interpreted processes
// already coexist in one event loop: a "compiled" process is simply a
// process whose step closure runs specialized straight-line code
// instead of walking an AST. This file contributes the shared
// vocabulary for choosing and reporting that execution strategy, used
// by both front-ends (vsim, vhdlsim) and surfaced through
// edatool.Toolchain and the CLIs.
//
// The backend is strictly output-neutral: for any mode, logs, VCD and
// final values are byte-identical (pinned by the differential
// harnesses). Only speed and the BackendStats counters may differ.

// BackendMode selects how behavioural processes execute.
type BackendMode uint8

const (
	// BackendAuto lets the front-end choose per process: two-state
	// eligible processes run compiled, everything else interpreted.
	// Today this resolves to BackendCompiled; the name leaves room for
	// smarter policies (e.g. profile-guided) without an API change.
	BackendAuto BackendMode = iota
	// BackendInterpret forces the 4-state AST interpreter for every
	// process.
	BackendInterpret
	// BackendCompiled specializes every eligible process into flat
	// two-state closures over uint64 words, with automatic per-
	// activation fallback to the interpreter on X/Z values; ineligible
	// processes (wide vectors, delays, unsupported constructs) stay
	// interpreted.
	BackendCompiled
)

// Compiled reports whether this mode enables the compiled fast path.
func (m BackendMode) Compiled() bool { return m != BackendInterpret }

func (m BackendMode) String() string {
	switch m {
	case BackendAuto:
		return "auto"
	case BackendInterpret:
		return "interpret"
	case BackendCompiled:
		return "compiled"
	}
	return fmt.Sprintf("backend(%d)", uint8(m))
}

// ParseBackendMode parses a -sim-mode flag value.
func ParseBackendMode(s string) (BackendMode, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "interpret", "interpreted", "interp":
		return BackendInterpret, nil
	case "compiled", "compile":
		return BackendCompiled, nil
	}
	return BackendAuto, fmt.Errorf("unknown backend mode %q (want auto, interpret, or compiled)", s)
}

// BackendStats reports how one simulation run executed: how many
// behavioural processes and continuous assignments were bound to the
// compiled fast path vs the interpreter, and how many compiled
// activations deferred to the interpreter because a guarded input
// carried X/Z at activation time. The counts are deterministic across
// worker counts (classification is static per design; fallbacks are
// per-activation and activations are identical in every
// configuration).
type BackendStats struct {
	Mode               string // resolved mode the run executed under
	CompiledProcs      int    // processes bound to compiled programs
	InterpretedProcs   int    // processes bound to the AST interpreter
	CompiledAssigns    int    // continuous assignments bound compiled
	InterpretedAssigns int    // continuous assignments bound interpreted
	Fallbacks          uint64 // compiled activations run by the interpreter (X/Z guard)
}

// Add accumulates o into s (summing runs; Mode keeps the first
// non-empty label and degrades to "mixed" on disagreement).
func (s *BackendStats) Add(o BackendStats) {
	if s.Mode == "" {
		s.Mode = o.Mode
	} else if o.Mode != "" && o.Mode != s.Mode {
		s.Mode = "mixed"
	}
	s.CompiledProcs += o.CompiledProcs
	s.InterpretedProcs += o.InterpretedProcs
	s.CompiledAssigns += o.CompiledAssigns
	s.InterpretedAssigns += o.InterpretedAssigns
	s.Fallbacks += o.Fallbacks
}
