package sim

import "testing"

// collector is a minimal front-end stand-in: an apply hook that logs
// (Sig, Lo, Aux) application order.
type collector struct {
	order []int
	hook  func(*NBARecord)
}

func newCollector() *collector {
	c := &collector{}
	c.hook = func(r *NBARecord) { c.order = append(c.order, r.Aux) }
	return c
}

// TestNBARecordOrder pins that typed records and plain NBA closures
// share one queue and apply in schedule order.
func TestNBARecordOrder(t *testing.T) {
	k := NewKernel()
	c := newCollector()
	k.Active(func() {
		r := k.NBAPut()
		r.Apply, r.Aux = c.hook, 1
		k.NBA(func() { c.order = append(c.order, 2) })
		r = k.NBAPut()
		r.Apply, r.Aux = c.hook, 3
	})
	if r := k.Run(); r != StopIdle {
		t.Fatalf("run stopped with %v", r)
	}
	if len(c.order) != 3 || c.order[0] != 1 || c.order[1] != 2 || c.order[2] != 3 {
		t.Fatalf("apply order = %v, want [1 2 3]", c.order)
	}
}

// TestNBARecordChaining pins that an apply hook may schedule further
// records, which land in the NEXT delta's NBA region (the recycled
// spare buffer), not the one being drained.
func TestNBARecordChaining(t *testing.T) {
	k := NewKernel()
	c := newCollector()
	deltas := []int32{}
	var hook func(*NBARecord)
	hook = func(r *NBARecord) {
		c.order = append(c.order, r.Aux)
		deltas = append(deltas, k.Delta())
		if r.Aux < 3 {
			next := r.Aux + 1
			nr := k.NBAPut() // scheduled from within the NBA drain
			nr.Apply, nr.Aux = hook, next
		}
	}
	k.Active(func() {
		r := k.NBAPut()
		r.Apply, r.Aux = hook, 1
	})
	if r := k.Run(); r != StopIdle {
		t.Fatalf("run stopped with %v", r)
	}
	if len(c.order) != 3 || c.order[0] != 1 || c.order[1] != 2 || c.order[2] != 3 {
		t.Fatalf("apply order = %v, want [1 2 3]", c.order)
	}
	if deltas[0] == deltas[1] || deltas[1] == deltas[2] {
		t.Fatalf("chained records applied in deltas %v, want three distinct deltas", deltas)
	}
}

// TestScheduleUpdateDelayed pins delayed records: they fire in the
// active region of their target time in seq order with other future
// events, and the record returns to the kernel pool for reuse.
func TestScheduleUpdateDelayed(t *testing.T) {
	k := NewKernel()
	c := newCollector()
	var at []Time
	hook := func(r *NBARecord) {
		c.order = append(c.order, r.Aux)
		at = append(at, k.Now())
	}
	k.Active(func() {
		r := k.ScheduleUpdate(5)
		r.Apply, r.Aux = hook, 50
		k.Schedule(3, func() { c.order = append(c.order, 30) })
		r = k.ScheduleUpdate(3)
		r.Apply, r.Aux = hook, 31
	})
	if r := k.Run(); r != StopIdle {
		t.Fatalf("run stopped with %v", r)
	}
	want := []int{30, 31, 50}
	if len(c.order) != 3 || c.order[0] != want[0] || c.order[1] != want[1] || c.order[2] != want[2] {
		t.Fatalf("apply order = %v, want %v", c.order, want)
	}
	if at[0] != 3 || at[1] != 5 {
		t.Fatalf("applied at times %v, want [3 5]", at)
	}
	if len(k.recFree) != 2 {
		t.Fatalf("free list holds %d records after the run, want 2", len(k.recFree))
	}
	// Reuse: the next delayed update must come from the pool.
	r := k.ScheduleUpdate(1)
	if r.Apply != nil || r.Sig != nil {
		t.Fatal("pooled record was not cleared on release")
	}
	if len(k.recFree) != 1 {
		t.Fatalf("free list holds %d records after reuse, want 1", len(k.recFree))
	}
}

// TestNBARecordSteadyStateZeroAllocs extends the kernel's hot-loop
// guarantee to the typed update queue: once the region buffers and the
// delayed-record pool have grown, scheduling and applying updates —
// zero-delay records every delta plus a delayed record per time step —
// allocates nothing.
func TestNBARecordSteadyStateZeroAllocs(t *testing.T) {
	k := NewKernel()
	const steps = 500
	n := 0
	var hook func(*NBARecord)
	var tick func()
	hook = func(r *NBARecord) {
		n++
		if n < steps {
			k.Active(tick)
		}
	}
	tick = func() {
		r := k.NBAPut()
		r.Apply = hook
		dr := k.ScheduleUpdate(1)
		dr.Apply = hook
		n++
	}
	run := func() {
		n = 0
		k.Active(tick)
		if r := k.Run(); r != StopIdle {
			t.Fatalf("run stopped with %v", r)
		}
	}
	run() // warm-up: grow buffers and pool
	avg := testing.AllocsPerRun(5, run)
	if avg >= 1 {
		t.Errorf("allocs per %d-step record run = %v, want < 1 (pooled-update regression)", steps, avg)
	}
}
