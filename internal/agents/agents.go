// Package agents implements the three LLM-based agents of AIVRIL 2.
//
// The Code Agent wraps the model session and produces testbenches and
// candidate RTL. The Review Agent runs the compiler and distills its raw
// log into a syntax corrective prompt. The Verification Agent runs the
// simulator against the frozen self-generated testbench and distills the
// simulation log into a functional corrective prompt.
//
// Both reviewer agents parse the *textual* tool logs — the same artefact
// the paper's agents receive — so feedback quality genuinely depends on
// log parsing fidelity.
package agents

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/edatool"
	"repro/internal/llm"
	"repro/internal/llm/provider"
)

// CodeAgent is the single source of generated code in the pipeline.
// It speaks to the model through the provider layer, so every call can
// fail with a classified error once rate limits, timeouts or circuit
// breakers intervene.
type CodeAgent struct {
	Session provider.Session

	// req is reused across calls: the middleware chain treats requests
	// as read-only, and reuse keeps the steady-state path allocation-free.
	req provider.Request
}

// NewCodeAgent opens a provider session for one problem/language task.
func NewCodeAgent(p provider.Provider, prob *bench.Problem, lang edatool.Language) (*CodeAgent, error) {
	s, err := p.NewSession(llm.GenRequest{Problem: prob, Language: lang})
	if err != nil {
		return nil, err
	}
	return &CodeAgent{Session: s}, nil
}

// GenerateTestbench asks the model for the self-verification testbench.
func (a *CodeAgent) GenerateTestbench(ctx context.Context) (string, float64, error) {
	a.req = provider.Request{Op: provider.OpGenerateTestbench}
	resp, err := a.Session.Do(ctx, &a.req)
	return resp.Code, resp.Latency, err
}

// RepairTestbench regenerates the testbench from syntax feedback.
func (a *CodeAgent) RepairTestbench(ctx context.Context, fb *llm.Feedback) (string, float64, error) {
	a.req = provider.Request{Op: provider.OpRepairTestbench, Feedback: fb}
	resp, err := a.Session.Do(ctx, &a.req)
	return resp.Code, resp.Latency, err
}

// GenerateRTL asks the model for candidate RTL (nil feedback = zero-shot).
func (a *CodeAgent) GenerateRTL(ctx context.Context, fb *llm.Feedback) (string, float64, error) {
	a.req = provider.Request{Op: provider.OpGenerateRTL, Feedback: fb}
	resp, err := a.Session.Do(ctx, &a.req)
	return resp.Code, resp.Latency, err
}

// AnalysisLatency models the Review/Verification agent's own LLM call
// for a corrective prompt with the given number of findings.
func (a *CodeAgent) AnalysisLatency(ctx context.Context, kind llm.FeedbackKind, items int) (float64, error) {
	a.req = provider.Request{Op: provider.OpAnalysis, Kind: kind, Items: items}
	resp, err := a.Session.Do(ctx, &a.req)
	return resp.Latency, err
}

// ---------------------------------------------------------------- review

// ReviewAgent supervises the Syntax Optimization loop.
type ReviewAgent struct{}

// Review latency model (seconds): base LLM call plus per-diagnostic
// reading/summarisation cost.
const (
	reviewBaseLatency = 1.2
	reviewPerItem     = 0.25
)

// diagLine matches the Vivado-style lines emitted by edatool, e.g.
// ERROR: [VRFC 10-91] "x" is not declared [design.v:12]
var diagLine = regexp.MustCompile(`^(ERROR|WARNING): \[([A-Z]+ [0-9-]+)\] (.*) \[([^\[\]:]+):(\d+)\]$`)

// ParseCompileLog converts a raw compiler log into a structured syntax
// corrective prompt. Snippet lines (indented, following a diagnostic)
// are attached to the preceding item.
func (ReviewAgent) ParseCompileLog(log string) *llm.Feedback {
	fb := &llm.Feedback{Kind: llm.SyntaxFeedback, Raw: log}
	lines := strings.Split(log, "\n")
	for i := 0; i < len(lines); i++ {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(lines[i]))
		if m == nil || m[1] != "ERROR" {
			continue
		}
		line, _ := strconv.Atoi(m[5])
		item := llm.FeedbackItem{
			Line:    line,
			Message: m[3],
			Hint:    hintFor(m[2], m[3]),
		}
		if i+1 < len(lines) && strings.HasPrefix(lines[i+1], "    ") {
			item.Snippet = strings.TrimSpace(lines[i+1])
		}
		fb.Items = append(fb.Items, item)
	}
	return fb
}

// hintFor maps diagnostic codes to actionable correction hints, the
// "highly detailed and actionable corrective prompt" of Section 3.2.
func hintFor(code, msg string) string {
	switch {
	case strings.Contains(msg, "not declared"):
		return "declare the referenced signal or fix the misspelled identifier"
	case strings.Contains(msg, "expecting") && strings.Contains(msg, `";"`):
		return "missing semicolon at the end of the statement"
	case strings.Contains(msg, "endmodule"):
		return "missing or misspelled endmodule"
	case strings.Contains(msg, "missing 'end"), strings.Contains(msg, "missing matching"):
		return "unbalanced begin/end or missing end keyword"
	case strings.Contains(msg, "non-register"):
		return "declare the procedurally assigned output as 'reg'"
	case strings.Contains(msg, "':='"), strings.Contains(msg, "'<='"):
		return "use '<=' for signals and ':=' for variables"
	case strings.Contains(msg, "syntax error"):
		return "fix the syntax error near the quoted token"
	default:
		return "address the reported compiler error"
	}
}

// CorrectivePrompt renders the feedback as the natural-language prompt
// the Code Agent receives (used by transcripts and examples).
func (ReviewAgent) CorrectivePrompt(fb *llm.Feedback) string {
	if len(fb.Items) == 0 {
		return "No syntax errors were reported. The code compiles cleanly."
	}
	var sb strings.Builder
	sb.WriteString("The compiler reported the following syntax problems. Please fix each one:\n")
	for i, item := range fb.Items {
		fmt.Fprintf(&sb, "%d. line %d: %s", i+1, item.Line, item.Message)
		if item.Snippet != "" {
			fmt.Fprintf(&sb, "\n   offending code: %s", item.Snippet)
		}
		fmt.Fprintf(&sb, "\n   suggestion: %s\n", item.Hint)
	}
	return sb.String()
}

// Latency returns the modelled wall-clock of one review call.
func (ReviewAgent) Latency(fb *llm.Feedback) float64 {
	return reviewBaseLatency + reviewPerItem*float64(len(fb.Items))
}

// ----------------------------------------------------------- verification

// VerificationAgent supervises the Functional Optimization loop.
type VerificationAgent struct{}

// Verification latency model.
const (
	verifyBaseLatency = 1.8
	verifyPerItem     = 0.35
)

// failLine matches testbench failure output in both languages:
//
//	Test Case 7 Failed: q expected 3 got 5      (Verilog $display)
//	Error: Test Case 7 Failed: q expected 3     (VHDL assert/report)
var failLine = regexp.MustCompile(`Test Case (\d+) Failed: (.*)`)

// ParseSimLog converts a raw simulation log into a functional
// corrective prompt. Simulator aborts (timeouts, faults) become a
// single high-level item.
func (VerificationAgent) ParseSimLog(log string) *llm.Feedback {
	fb := &llm.Feedback{Kind: llm.FunctionalFeedback, Raw: log}
	for _, line := range strings.Split(log, "\n") {
		if m := failLine.FindStringSubmatch(line); m != nil {
			n, _ := strconv.Atoi(m[1])
			fb.Items = append(fb.Items, llm.FeedbackItem{
				Line:    n,
				Message: strings.TrimSpace(m[0]),
				Hint:    "update the RTL so this check passes: " + strings.TrimSpace(m[2]),
			})
		}
	}
	if len(fb.Items) == 0 && !strings.Contains(log, edatool.PassMarker) {
		reason := "simulation ended without the pass marker"
		switch {
		case strings.Contains(log, "run aborted"):
			reason = "simulation did not terminate (possible missing $finish or a hung design)"
		case strings.Contains(log, "simulation fatal"), strings.Contains(log, "SIMULATOR:"):
			reason = "the simulator reported a fatal error while executing the design"
		}
		fb.Items = append(fb.Items, llm.FeedbackItem{Message: reason, Hint: reason})
	}
	return fb
}

// Passed reports whether the simulation log indicates full success.
func (VerificationAgent) Passed(log string) bool {
	if !strings.Contains(log, edatool.PassMarker) {
		return false
	}
	return !failLine.MatchString(log) &&
		!strings.Contains(log, "run aborted") &&
		!strings.Contains(log, "SIMULATOR:")
}

// CorrectivePrompt renders functional feedback for the Code Agent.
func (VerificationAgent) CorrectivePrompt(fb *llm.Feedback) string {
	if len(fb.Items) == 0 {
		return "All tests passed successfully. No functional corrections are needed."
	}
	var sb strings.Builder
	sb.WriteString("Simulation against the testbench reported failures. Please revise the RTL:\n")
	for i, item := range fb.Items {
		fmt.Fprintf(&sb, "%d. %s\n   suggestion: %s\n", i+1, item.Message, item.Hint)
	}
	return sb.String()
}

// Latency returns the modelled wall-clock of one verification call.
func (VerificationAgent) Latency(fb *llm.Feedback) float64 {
	return verifyBaseLatency + verifyPerItem*float64(len(fb.Items))
}
