package agents

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
	"repro/internal/llm"
	"repro/internal/llm/provider"
)

func TestParseCompileLogExtractsErrors(t *testing.T) {
	src := `module m(input a, output y);
  assign y = a & ghost;
endmodule`
	comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: "design.v", Text: src})
	if comp.OK {
		t.Fatal("fixture should not compile")
	}
	var review ReviewAgent
	fb := review.ParseCompileLog(comp.Log)
	if fb.Kind != llm.SyntaxFeedback {
		t.Error("wrong feedback kind")
	}
	if len(fb.Items) == 0 {
		t.Fatalf("no items parsed from log:\n%s", comp.Log)
	}
	item := fb.Items[0]
	if item.Line != 2 {
		t.Errorf("line = %d, want 2", item.Line)
	}
	if !strings.Contains(item.Message, "ghost") {
		t.Errorf("message = %q", item.Message)
	}
	if !strings.Contains(item.Snippet, "ghost") {
		t.Errorf("snippet = %q", item.Snippet)
	}
	if item.Hint == "" {
		t.Error("hint empty")
	}
}

func TestParseCompileLogCleanIsEmpty(t *testing.T) {
	comp := edatool.Compile(edatool.Verilog,
		edatool.Source{Name: "d.v", Text: "module m(input a, output y); assign y = a; endmodule"})
	var review ReviewAgent
	fb := review.ParseCompileLog(comp.Log)
	if len(fb.Items) != 0 {
		t.Errorf("clean compile produced %d items", len(fb.Items))
	}
	if !strings.Contains(review.CorrectivePrompt(fb), "compiles cleanly") {
		t.Error("prompt for clean compile wrong")
	}
}

func TestParseCompileLogMultipleErrors(t *testing.T) {
	src := `module m(input a, output y)
  assign y = a & ghost;
  wire w
endmodule`
	comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: "design.v", Text: src})
	var review ReviewAgent
	fb := review.ParseCompileLog(comp.Log)
	if len(fb.Items) < 2 {
		t.Errorf("want multiple items, got %d from:\n%s", len(fb.Items), comp.Log)
	}
	prompt := review.CorrectivePrompt(fb)
	if !strings.Contains(prompt, "1.") || !strings.Contains(prompt, "2.") {
		t.Errorf("prompt not enumerated:\n%s", prompt)
	}
}

func TestParseSimLogFailures(t *testing.T) {
	log := `Test Case 2 Failed: shift_ena expected 0 got 1
Test Case 7 Failed: q expected 3 got 4
tb.v:44: $stop called at 60 (1ns)
`
	var verify VerificationAgent
	fb := verify.ParseSimLog(log)
	if fb.Kind != llm.FunctionalFeedback {
		t.Error("wrong kind")
	}
	if len(fb.Items) != 2 {
		t.Fatalf("items = %d", len(fb.Items))
	}
	if fb.Items[0].Line != 2 || fb.Items[1].Line != 7 {
		t.Errorf("case numbers: %d, %d", fb.Items[0].Line, fb.Items[1].Line)
	}
	if verify.Passed(log) {
		t.Error("failed log judged passed")
	}
}

func TestParseSimLogPassed(t *testing.T) {
	log := "All tests passed successfully!\ntb.v:53: $finish called at 60 (1ns)\n"
	var verify VerificationAgent
	if !verify.Passed(log) {
		t.Error("pass log judged failed")
	}
	fb := verify.ParseSimLog(log)
	if len(fb.Items) != 0 {
		t.Errorf("pass log produced items: %+v", fb.Items)
	}
}

func TestParseSimLogTimeout(t *testing.T) {
	log := "SIMULATOR: run aborted (timeout) at time 1000000\n"
	var verify VerificationAgent
	if verify.Passed(log) {
		t.Error("aborted sim judged passed")
	}
	fb := verify.ParseSimLog(log)
	if len(fb.Items) != 1 {
		t.Fatalf("items = %d", len(fb.Items))
	}
	if !strings.Contains(fb.Items[0].Message, "terminate") {
		t.Errorf("message = %q", fb.Items[0].Message)
	}
}

func TestParseSimLogVHDLAsserts(t *testing.T) {
	log := `Error: Test Case 3 Failed: count expected 5
Time: 41 ns  Iteration: 0  Process: line_12
`
	var verify VerificationAgent
	fb := verify.ParseSimLog(log)
	if len(fb.Items) != 1 || fb.Items[0].Line != 3 {
		t.Errorf("items = %+v", fb.Items)
	}
}

func TestCodeAgentRoundTrip(t *testing.T) {
	suite := bench.NewSuite()
	model := llm.ProfileByName("claude-3.5-sonnet")
	agent, err := NewCodeAgent(provider.NewOffline(model), suite.ByID("gate_and"), edatool.Verilog)
	if err != nil {
		t.Fatalf("NewCodeAgent: %v", err)
	}
	ctx := context.Background()
	tb, lat, err := agent.GenerateTestbench(ctx)
	if err != nil || tb == "" || lat <= 0 {
		t.Errorf("bad testbench generation: err=%v", err)
	}
	rtl, lat2, err := agent.GenerateRTL(ctx, nil)
	if err != nil || rtl == "" || lat2 <= 0 {
		t.Errorf("bad rtl generation: err=%v", err)
	}
	alat, err := agent.AnalysisLatency(ctx, llm.SyntaxFeedback, 3)
	if err != nil || alat <= 0 {
		t.Errorf("bad analysis latency: %v err=%v", alat, err)
	}
}

func TestLatencyScalesWithItems(t *testing.T) {
	var review ReviewAgent
	small := &llm.Feedback{Items: make([]llm.FeedbackItem, 1)}
	big := &llm.Feedback{Items: make([]llm.FeedbackItem, 10)}
	if review.Latency(big) <= review.Latency(small) {
		t.Error("review latency must grow with items")
	}
	var verify VerificationAgent
	if verify.Latency(big) <= verify.Latency(small) {
		t.Error("verify latency must grow with items")
	}
}

func TestVerificationPromptMentionsFailures(t *testing.T) {
	var verify VerificationAgent
	fb := verify.ParseSimLog("Test Case 1 Failed: y expected 1 got 0\n")
	prompt := verify.CorrectivePrompt(fb)
	if !strings.Contains(prompt, "expected 1") {
		t.Errorf("prompt lacks failure detail:\n%s", prompt)
	}
}
