package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/edatool"
	"repro/internal/exp"
)

// pairByModel groups Verilog/VHDL summaries per model preserving the
// profile order used by the paper.
func pairByModel(sums []*exp.Summary) [](struct{ V, H *exp.Summary }) {
	type pair = struct{ V, H *exp.Summary }
	order := []string{}
	byModel := map[string]*pair{}
	for _, s := range sums {
		p, ok := byModel[s.Model]
		if !ok {
			p = &pair{}
			byModel[s.Model] = p
			order = append(order, s.Model)
		}
		if s.Language == edatool.Verilog {
			p.V = s
		} else {
			p.H = s
		}
	}
	out := make([]pair, 0, len(order))
	for _, m := range order {
		out = append(out, *byModel[m])
	}
	return out
}

// Table1 renders the pass-rate summary in the paper's layout.
func Table1(sums []*exp.Summary) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Summary of pass-rate results (all values %)\n")
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	fmt.Fprintf(&sb, "%-32s | %8s %8s %8s | %8s %8s %8s\n",
		"Technology", "V p@1S", "V p@1F", "V dF", "VHDL p@1S", "VHDL p@1F", "VHDL dF")
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	pairs := pairByModel(sums)
	// Baseline rows.
	for _, p := range pairs {
		vS, vF, _, _ := p.V.Rates()
		hS, hF, _, _ := p.H.Rates()
		fmt.Fprintf(&sb, "%-32s | %8.2f %8.2f %8s | %8.2f %8.2f %8s\n",
			p.V.Model, vS, vF, "-", hS, hF, "-")
	}
	// AIVRIL2 rows.
	var vDeltas, hDeltas []float64
	for _, p := range pairs {
		_, _, vS, vF := p.V.Rates()
		_, _, hS, hF := p.H.Rates()
		vD, vOK := p.V.DeltaF()
		hD, hOK := p.H.DeltaF()
		vDs, hDs := "N/A", "N/A"
		if vOK {
			vDs = fmt.Sprintf("%.2f", vD)
			vDeltas = append(vDeltas, vD)
		}
		if hOK {
			hDs = fmt.Sprintf("%.2f", hD)
			hDeltas = append(hDeltas, hD)
		}
		fmt.Fprintf(&sb, "%-32s | %8.2f %8.2f %8s | %8.2f %8.2f %8s\n",
			"AIVRIL2 ("+p.V.Model+")", vS, vF, vDs, hS, hF, hDs)
	}
	fmt.Fprintf(&sb, "%-32s | %8s %8s %8.2f | %8s %8s %8.2f\n",
		"Average", "", "", mean(vDeltas), "", "", mean(hDeltas))
	return sb.String()
}

// Fig3 renders the latency breakdown series.
func Fig3(sums []*exp.Summary) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: Average latency breakdown across optimization loops (seconds)\n")
	sb.WriteString(strings.Repeat("-", 86) + "\n")
	fmt.Fprintf(&sb, "%-24s | %-8s | %12s %14s %16s %9s\n",
		"Model", "Language", "Baseline", "Syntax Loop", "Functional Loop", "Total")
	sb.WriteString(strings.Repeat("-", 86) + "\n")
	for _, s := range sums {
		total := s.AvgBaselineLatency + s.AvgSyntaxLatency + s.AvgFuncLatency
		fmt.Fprintf(&sb, "%-24s | %-8s | %12.2f %14.2f %16.2f %9.2f\n",
			s.Model, s.Language, s.AvgBaselineLatency, s.AvgSyntaxLatency, s.AvgFuncLatency, total)
	}
	sb.WriteString("\nAverage convergence cycles:\n")
	for _, s := range sums {
		fmt.Fprintf(&sb, "  %-24s %-8s syntax %.2f  functional %.2f\n",
			s.Model, s.Language, s.AvgSyntaxIters, s.AvgFuncIters)
	}
	return sb.String()
}

// Table2Row is one comparison entry.
type Table2Row struct {
	Technology string
	License    string
	PassAt1F   float64
	Measured   bool
}

// Table2 assembles the state-of-the-art comparison: cited literature
// rows plus our measured rows (Verilog only, as in the paper).
func Table2(measured []Table2Row) string {
	rows := []Table2Row{}
	for _, l := range baseline.Literature() {
		rows = append(rows, Table2Row{l.Technology, l.License, l.PassAt1F, false})
	}
	rows = append(rows, measured...)
	var sb strings.Builder
	sb.WriteString("Table 2: Comparison of state-of-the-art RTL generation techniques (Verilog pass@1F %)\n")
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	fmt.Fprintf(&sb, "%-36s | %-13s | %9s | %s\n", "Technology", "License", "pass@1F", "Source")
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range rows {
		src := "cited"
		if r.Measured {
			src = "measured"
		}
		fmt.Fprintf(&sb, "%-36s | %-13s | %9.2f | %s\n", r.Technology, r.License, r.PassAt1F, src)
	}
	return sb.String()
}

// Ablation renders comparator outcomes (E4) side by side.
func Ablation(rows map[string]*exp.Summary) string {
	var names []string
	for k := range rows {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("Ablation: design-choice comparison (Verilog, Claude profile)\n")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	fmt.Fprintf(&sb, "%-24s | %9s %9s %9s %9s | %9s\n",
		"Variant", "base p@1S", "base p@1F", "loop p@1S", "loop p@1F", "avg lat s")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	for _, name := range names {
		s := rows[name]
		bS, bF, lS, lF := s.Rates()
		total := s.AvgBaselineLatency + s.AvgSyntaxLatency + s.AvgFuncLatency
		fmt.Fprintf(&sb, "%-24s | %9.2f %9.2f %9.2f %9.2f | %9.2f\n", name, bS, bF, lS, lF, total)
	}
	return sb.String()
}

// IterSweep renders the iteration-budget sweep (E5).
func IterSweep(budgets []int, sums []*exp.Summary) string {
	var sb strings.Builder
	sb.WriteString("Iteration-budget sweep (Verilog, Claude profile)\n")
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	fmt.Fprintf(&sb, "%-8s | %9s %9s | %12s\n", "budget", "loop p@1S", "loop p@1F", "avg total s")
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	for i, s := range sums {
		_, _, lS, lF := s.Rates()
		total := s.AvgBaselineLatency + s.AvgSyntaxLatency + s.AvgFuncLatency
		fmt.Fprintf(&sb, "%-8d | %9.2f %9.2f | %12.2f\n", budgets[i], lS, lF, total)
	}
	return sb.String()
}

// CategoryTable renders the per-category functional pass rates of a
// summary, sorted by category name.
func CategoryTable(s *exp.Summary) string {
	rates := s.CategoryRates()
	var names []string
	for k := range rates {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-category pass@1F: %s / %s\n", s.Model, s.Language)
	sb.WriteString(strings.Repeat("-", 44) + "\n")
	for _, n := range names {
		e := rates[n]
		fmt.Fprintf(&sb, "  %-14s %3d/%3d  %6.1f%%\n", n, e[0], e[1], 100*float64(e[0])/float64(e[1]))
	}
	return sb.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
