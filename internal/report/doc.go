// Package report renders experiment results into the paper's tables
// and figures, plus the reproduction's own diagnostics. Everything is
// plain monospace text written for terminals and diffs — stable
// layouts, fixed column widths — so two runs can be compared with
// nothing fancier than diff(1).
//
// Paper artefacts: Table1 (pass-rate summary with ΔF), Table2
// (state-of-the-art comparison merging cited literature rows from
// internal/baseline with our measured rows), Fig3 (latency breakdown
// per optimization loop and convergence cycles), Ablation (E4), and
// IterSweep (E5).
//
// Beyond the paper: CategoryTable breaks pass@1F down per problem
// category, and Manifest summarises what the orchestration layer
// (internal/runner) did on an invocation — cells executed vs served
// from cache, shard coverage, and wall-clock.
package report
