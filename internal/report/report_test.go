package report

import (
	"strings"
	"testing"

	"repro/internal/edatool"
	"repro/internal/exp"
	"repro/internal/runner"
)

func fakeSummaries() []*exp.Summary {
	mk := func(model string, lang edatool.Language, bs, bf, ls, lf int) *exp.Summary {
		return &exp.Summary{
			Model: model, Language: lang, N: 100,
			BaselineSyntaxPass: bs, BaselineFuncPass: bf,
			LoopSyntaxPass: ls, LoopFuncPass: lf,
			AvgBaselineLatency: 10, AvgSyntaxLatency: 5, AvgFuncLatency: 15,
		}
	}
	return []*exp.Summary{
		mk("claude-3.5-sonnet", edatool.Verilog, 91, 60, 100, 77),
		mk("claude-3.5-sonnet", edatool.VHDL, 88, 54, 100, 66),
		mk("llama3-70b", edatool.Verilog, 71, 38, 100, 55),
		mk("llama3-70b", edatool.VHDL, 1, 0, 59, 33),
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(fakeSummaries())
	for _, want := range []string{
		"Table 1", "claude-3.5-sonnet", "AIVRIL2 (llama3-70b)",
		"91.00", "77.00", "N/A", // ΔF is N/A for llama VHDL (baseline 0)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// ΔF for claude Verilog: (77-60)/60 = 28.33%.
	if !strings.Contains(out, "28.33") {
		t.Errorf("ΔF computation missing:\n%s", out)
	}
}

func TestFig3Render(t *testing.T) {
	out := Fig3(fakeSummaries())
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "30.00") {
		t.Errorf("fig3:\n%s", out)
	}
}

func TestTable2IncludesLiteratureAndMeasured(t *testing.T) {
	out := Table2([]Table2Row{
		{Technology: "AIVRIL2 (claude-3.5-sonnet)", License: "Closed Source", PassAt1F: 77, Measured: true},
	})
	for _, want := range []string{"ChipNemo-13B", "22.40", "RTLFixer", "AIVRIL2 (claude-3.5-sonnet)", "measured", "cited"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAblationRender(t *testing.T) {
	rows := map[string]*exp.Summary{
		"frozen": fakeSummaries()[0],
		"cogen":  fakeSummaries()[1],
	}
	out := Ablation(rows)
	if !strings.Contains(out, "frozen") || !strings.Contains(out, "cogen") {
		t.Errorf("ablation:\n%s", out)
	}
}

func TestIterSweepRender(t *testing.T) {
	out := IterSweep([]int{1, 2}, fakeSummaries()[:2])
	if !strings.Contains(out, "budget") || !strings.Contains(out, "1") {
		t.Errorf("sweep:\n%s", out)
	}
}

func TestManifestDispatchLine(t *testing.T) {
	local := Manifest(runner.Stats{})
	if strings.Contains(local, "dispatch") {
		t.Errorf("in-process manifest mentions dispatch:\n%s", local)
	}
	remote := Manifest(runner.Stats{Remote: "http://127.0.0.1:8080"})
	if !strings.Contains(remote, "dispatch") || !strings.Contains(remote, "job service http://127.0.0.1:8080") {
		t.Errorf("remote manifest missing dispatch line:\n%s", remote)
	}
}
