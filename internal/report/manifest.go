package report

import (
	"fmt"
	"strings"

	"repro/internal/runner"
)

// Manifest renders the run manifest: what the orchestration layer did
// on this invocation — cells executed vs served from cache, cells left
// to other shards, and wall-clock. It is the at-a-glance answer to
// "did the cache work?" and "is this shard done?".
func Manifest(st runner.Stats) string {
	var sb strings.Builder
	sb.WriteString("Run manifest\n")
	sb.WriteString(strings.Repeat("-", 44) + "\n")
	fmt.Fprintf(&sb, "  %-22s %s\n", "shard", st.Shard)
	if st.Remote != "" {
		fmt.Fprintf(&sb, "  %-22s job service %s\n", "dispatch", st.Remote)
	}
	fmt.Fprintf(&sb, "  %-22s %d\n", "jobs submitted", st.Total)
	fmt.Fprintf(&sb, "  %-22s %d\n", "executed", st.Executed)
	fmt.Fprintf(&sb, "  %-22s %d (%.1f%% hit rate)\n", "cache hits", st.CacheHits, 100*st.HitRate())
	fmt.Fprintf(&sb, "  %-22s %d\n", "skipped (other shard)", st.Skipped)
	if st.Failed > 0 {
		fmt.Fprintf(&sb, "  %-22s %d\n", "failed", st.Failed)
	}
	if st.StoreErrors > 0 {
		fmt.Fprintf(&sb, "  %-22s %d (these cells will recompute next run)\n", "cache write errors", st.StoreErrors)
	}
	if st.CheckpointsWritten > 0 || st.JobsResumed > 0 {
		fmt.Fprintf(&sb, "  %-22s %d\n", "checkpoints written", st.CheckpointsWritten)
		fmt.Fprintf(&sb, "  %-22s %d\n", "jobs resumed", st.JobsResumed)
		fmt.Fprintf(&sb, "  %-22s %d\n", "states replayed", st.StatesReplayed)
	}
	if st.ElabDesignHits+st.ElabDesignMisses+st.ElabParseHits+st.ElabParseMisses > 0 {
		dn := st.ElabDesignHits + st.ElabDesignMisses
		pn := st.ElabParseHits + st.ElabParseMisses
		fmt.Fprintf(&sb, "  %-22s %d/%d hits\n", "elab designs reused", st.ElabDesignHits, dn)
		fmt.Fprintf(&sb, "  %-22s %d/%d hits\n", "elab parses reused", st.ElabParseHits, pn)
	}
	if b := st.Backend; b.CompiledProcs+b.InterpretedProcs+b.CompiledAssigns+b.InterpretedAssigns > 0 {
		fmt.Fprintf(&sb, "  %-22s %s\n", "sim backend", b.Mode)
		fmt.Fprintf(&sb, "  %-22s %d/%d procs, %d/%d assigns\n", "compiled",
			b.CompiledProcs, b.CompiledProcs+b.InterpretedProcs,
			b.CompiledAssigns, b.CompiledAssigns+b.InterpretedAssigns)
		fmt.Fprintf(&sb, "  %-22s %d activations\n", "x/z fallbacks", b.Fallbacks)
	}
	fmt.Fprintf(&sb, "  %-22s %.2fs\n", "wall-clock", st.Wall.Seconds())
	return sb.String()
}
