package llm

import (
	"math/rand"
	"strings"
)

// MutKind distinguishes syntax-breaking from behaviour-changing defects.
type MutKind int

// Mutation kinds.
const (
	MutSyntax MutKind = iota
	MutFunctional
)

// Mutation is one concrete defect injected into generated code. Apply
// transforms source text; Marker is a substring of the resulting broken
// region used to decide whether agent feedback localises the defect.
//
// site records the defect's index in the deterministic site enumeration
// for its (base source, kind), which is how a serialized session
// snapshot re-binds Apply after a restore: closures cannot cross a
// process boundary, but the enumeration that produced them can be
// replayed.
type Mutation struct {
	Kind   MutKind
	Desc   string
	Marker string
	Apply  func(src string) string

	site int
}

// mutantSite is an applicable mutation opportunity found in the source.
// weight biases sampling: subtle boundary defects carry more weight than
// loud structural ones, matching the empirical skew of LLM functional
// bugs toward corner cases.
type mutantSite struct {
	desc   string
	marker string
	weight int
	apply  func(string) string
}

// replaceNth replaces the n-th occurrence (0-based) of old with new.
func replaceNth(src, old, new string, n int) string {
	idx := 0
	for i := 0; i <= n; i++ {
		j := strings.Index(src[idx:], old)
		if j < 0 {
			return src
		}
		idx += j
		if i < n {
			idx += len(old)
		}
	}
	return src[:idx] + new + src[idx+len(old):]
}

func countOcc(src, sub string) int { return strings.Count(src, sub) }

// ---------------------------------------------------------------- syntax

// syntaxSites enumerates syntax-defect opportunities for the language.
func syntaxSites(src string, verilog bool) []mutantSite {
	var sites []mutantSite
	addOccs := func(tok, repl, desc string, limit int) {
		n := countOcc(src, tok)
		if n > limit {
			n = limit
		}
		for i := 0; i < n; i++ {
			i := i
			sites = append(sites, mutantSite{
				desc:   desc,
				marker: strings.TrimSpace(repl),
				apply:  func(s string) string { return replaceNth(s, tok, repl, i) },
			})
		}
	}
	if verilog {
		// Drop a semicolon after an assignment.
		addOccs(";\n", "\n", "missing semicolon", 4)
		// Misspell endmodule.
		if strings.Contains(src, "endmodule") {
			sites = append(sites, mutantSite{
				desc:   "misspelled endmodule",
				marker: "endmodul",
				apply:  func(s string) string { return strings.Replace(s, "endmodule", "endmodul", 1) },
			})
		}
		// Misspell begin.
		addOccs("begin", "begn", "misspelled 'begin'", 2)
		// Unbalanced parenthesis in an expression.
		addOccs(");\n", ";\n", "missing closing parenthesis", 3)
		// reg keyword dropped from an output that is written procedurally.
		if strings.Contains(src, "output reg") {
			sites = append(sites, mutantSite{
				desc:   "output missing 'reg' despite procedural assignment",
				marker: "non-register",
				apply:  func(s string) string { return strings.Replace(s, "output reg", "output", 1) },
			})
		}
		// Undeclared identifier: rename a use of a known signal.
		for _, id := range []string{"reset", "count", "state", "din", "sel", "cin"} {
			tok := "(" + id + ")"
			if strings.Contains(src, tok) {
				id := id
				sites = append(sites, mutantSite{
					desc:   "reference to undeclared identifier",
					marker: id + "_sig",
					apply: func(s string) string {
						return strings.Replace(s, "("+id+")", "("+id+"_sig)", 1)
					},
				})
			}
		}
		// endcase dropped.
		addOccs("endcase", "", "missing endcase", 1)
	} else {
		// VHDL: drop the semicolon of an assignment statement (library
		// and use clauses are too forgiving to bother mutating).
		for _, tok := range []string{"<= ", ":= "} {
			n := countOcc(src, tok)
			if n > 3 {
				n = 3
			}
			for i := 0; i < n; i++ {
				i, tok := i, tok
				sites = append(sites, mutantSite{
					desc:   "missing semicolon",
					marker: ";",
					apply: func(s string) string {
						// Remove the first ";" after the i-th assignment.
						idx := 0
						for k := 0; k <= i; k++ {
							j := strings.Index(s[idx:], tok)
							if j < 0 {
								return s
							}
							idx += j + len(tok)
						}
						semi := strings.Index(s[idx:], ";")
						if semi < 0 {
							return s
						}
						return s[:idx+semi] + s[idx+semi+1:]
					},
				})
			}
		}
		// end if dropped.
		addOccs("end if;", "", "missing 'end if'", 2)
		// Misspell entity.
		if strings.Contains(src, "end entity;") {
			sites = append(sites, mutantSite{
				desc:   "misspelled 'entity'",
				marker: "entty",
				apply:  func(s string) string { return strings.Replace(s, "end entity;", "end entty;", 1) },
			})
		}
		// Signal assigned with := instead of <=.
		if idx := strings.Index(src, "  q <= "); idx >= 0 {
			sites = append(sites, mutantSite{
				desc:   "signal assigned with ':='",
				marker: "q :=",
				apply:  func(s string) string { return strings.Replace(s, "  q <= ", "  q := ", 1) },
			})
		}
		// end process dropped.
		addOccs("end process;", "", "missing 'end process'", 1)
		// Misspell architecture.
		if strings.Contains(src, "architecture rtl") {
			sites = append(sites, mutantSite{
				desc:   "misspelled 'architecture'",
				marker: "architcture",
				apply:  func(s string) string { return strings.Replace(s, "architecture rtl", "architcture rtl", 1) },
			})
		}
		// Undeclared identifier.
		for _, id := range []string{"reset", "cnt", "state", "din", "sel", "r"} {
			tok := id + " = '1'"
			if strings.Contains(src, tok) {
				id := id
				sites = append(sites, mutantSite{
					desc:   "reference to undeclared identifier",
					marker: id + "_sig",
					apply: func(s string) string {
						return strings.Replace(s, id+" = '1'", id+"_sig = '1'", 1)
					},
				})
			}
		}
	}
	return sites
}

// ---------------------------------------------------------- functional

// funcSites enumerates behaviour-changing (but compilable) mutations.
func funcSites(src string, verilog bool) []mutantSite {
	var sites []mutantSite
	type swap struct {
		from, to, desc string
		weight         int
	}
	var swaps []swap
	if verilog {
		swaps = []swap{
			{" + 1", " + 2", "off-by-one increment", 1},
			{" - 1", " - 2", "off-by-one decrement", 1},
			{" & ", " | ", "AND swapped with OR", 1},
			{" | ", " & ", "OR swapped with AND", 1},
			{" ^ ", " & ", "XOR swapped with AND", 1},
			{" == ", " != ", "equality inverted", 1},
			{" < ", " >= ", "comparison inverted", 1},
			{" > ", " <= ", "comparison inverted", 1},
			{"posedge", "negedge", "wrong clock edge", 1},
			{"? a : b", "? b : a", "mux arms swapped", 1},
			{"? b : a", "? a : b", "mux arms swapped", 1},
			{"if (reset)", "if (!reset)", "reset polarity inverted", 1},
			{"<= 1'b1", "<= 1'b0", "constant flipped", 1},
			{"<= 0;\n", "<= 1;\n", "reset value wrong", 1},
			{" >> ", " << ", "shift direction reversed", 1},
			{" << ", " >> ", "shift direction reversed", 1},
			{"~", "", "inversion dropped", 1},
		}
	} else {
		swaps = []swap{
			{" + 1", " + 2", "off-by-one increment", 1},
			{" - 1", " - 2", "off-by-one decrement", 1},
			{" and ", " or ", "AND swapped with OR", 1},
			{" or ", " and ", "OR swapped with AND", 1},
			{" xor ", " and ", "XOR swapped with AND", 1},
			{"rising_edge", "falling_edge", "wrong clock edge", 1},
			{"reset = '1'", "reset = '0'", "reset polarity inverted", 1},
			{"<= '1'", "<= '0'", "constant flipped", 1},
			{"(others => '0')", "(others => '1')", "reset value wrong", 1},
			{"shift_right", "shift_left", "shift direction reversed", 1},
			{"shift_left", "shift_right", "shift direction reversed", 1},
			{"not ", "", "inversion dropped", 1},
			{" /= ", " = ", "inequality inverted", 1},
		}
	}
	// Subtle boundary defects: off-by-one thresholds and wrong case
	// constants. These are the defects most likely to slip past a
	// low-coverage self-generated testbench while still failing the
	// exhaustive reference bench — the gap that keeps AIVRIL 2 below
	// 100% functional in the paper.
	if verilog {
		swaps = append(swaps,
			swap{">= 4'd9", ">= 4'd10", "wrap threshold off by one", 6},
			swap{"== 2'b11", "== 2'b10", "terminal count off by one", 6},
			swap{"!= 4'd15", "!= 4'd14", "saturation limit off by one", 6},
			swap{">= 3'd5", ">= 3'd6", "threshold off by one", 6},
			swap{"== 2'd3", "== 2'd2", "count limit off by one", 6},
			swap{"cnt <= 2'd3", "cnt <= 2'd2", "stretch length off by one", 6},
			swap{"q <= 4'b0001", "q <= 4'b0010", "initial pattern wrong", 6},
			swap{"state <= 4'd1", "state <= 4'd0", "FSM transition dropped", 6},
			swap{"4'd0: state <= din ? 4'd1 : 4'd0", "4'd0: state <= 4'd0", "FSM arc stuck", 6},
			swap{"4'd4", "4'd3", "state constant off by one", 6},
			swap{"8'hFF", "8'hFE", "saturation constant off by one", 6},
		)
	} else {
		swaps = append(swaps,
			swap{">= 9", ">= 10", "wrap threshold off by one", 6},
			swap{"= \"11\"", "= \"10\"", "terminal count off by one", 6},
			swap{"/= 15", "/= 14", "saturation limit off by one", 6},
			swap{">= 5", ">= 6", "threshold off by one", 6},
			swap{"r <= \"0001\"", "r <= \"0010\"", "initial pattern wrong", 6},
			swap{"state <= 1; else state <= 0", "state <= 0; else state <= 0", "FSM arc stuck", 6},
			swap{"cnt <= \"11\"", "cnt <= \"10\"", "stretch length off by one", 6},
			swap{"when 4 =>", "when 3 =>", "state constant off by one", 6},
			swap{"\"11111111\"", "\"11111110\"", "saturation constant off by one", 6},
		)
	}
	for _, sw := range swaps {
		sw := sw
		n := countOcc(src, sw.from)
		if n > 3 {
			n = 3
		}
		for i := 0; i < n; i++ {
			i := i
			// Skip mutations that would produce identical code.
			if sw.from == sw.to {
				continue
			}
			sites = append(sites, mutantSite{
				desc:   sw.desc,
				marker: strings.TrimSpace(sw.to),
				weight: sw.weight,
				apply:  func(s string) string { return replaceNth(s, sw.from, sw.to, i) },
			})
		}
	}
	return sites
}

// sampleMutations picks up to n distinct mutation sites of the given kind.
func sampleMutations(rng *rand.Rand, src string, verilog bool, kind MutKind, n int) []Mutation {
	var sites []mutantSite
	if kind == MutSyntax {
		sites = syntaxSites(src, verilog)
	} else {
		sites = funcSites(src, verilog)
	}
	if len(sites) == 0 || n <= 0 {
		return nil
	}
	// Weighted sampling without replacement.
	total := 0
	for i := range sites {
		if sites[i].weight <= 0 {
			sites[i].weight = 1
		}
		total += sites[i].weight
	}
	var out []Mutation
	for len(out) < n && total > 0 {
		pick := rng.Intn(total)
		for i := range sites {
			w := sites[i].weight
			if w == 0 {
				continue
			}
			if pick < w {
				out = append(out, Mutation{
					Kind: kind, Desc: sites[i].desc, Marker: sites[i].marker, Apply: sites[i].apply,
					site: i,
				})
				total -= w
				sites[i].weight = 0
				break
			}
			pick -= w
		}
	}
	return out
}

// render applies the active mutations to the golden source in order.
func render(golden string, muts []Mutation) string {
	src := golden
	for _, m := range muts {
		src = m.Apply(src)
	}
	return src
}
