package llm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/edatool"
)

var testSuite = bench.NewSuite()

func testReq(id string, lang edatool.Language) GenRequest {
	return GenRequest{Problem: testSuite.ByID(id), Language: lang}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
		for _, sk := range []LangSkill{p.Verilog, p.VHDL} {
			if sk.SyntaxErrRate < 0 || sk.SyntaxErrRate > 1 ||
				sk.FuncErrRate < 0 || sk.FuncErrRate > 1 {
				t.Errorf("%s: rates out of range", p.Name())
			}
			if sk.GenLatency <= 0 {
				t.Errorf("%s: non-positive latency", p.Name())
			}
		}
	}
	for _, want := range []string{"claude-3.5-sonnet", "gpt-4o", "llama3-70b"} {
		if !names[want] {
			t.Errorf("missing profile %q", want)
		}
	}
	if ProfileByName("nope") != nil {
		t.Error("unknown profile should be nil")
	}
}

func TestSessionDeterministic(t *testing.T) {
	m := ProfileByName("gpt-4o")
	req := testReq("counter_up_w4", edatool.Verilog)
	s1, s2 := m.NewSession(req), m.NewSession(req)
	c1, _ := s1.GenerateRTL(nil)
	c2, _ := s2.GenerateRTL(nil)
	if c1 != c2 {
		t.Error("same seed must give same generation")
	}
	tb1, _ := s1.GenerateTestbench()
	tb2, _ := s2.GenerateTestbench()
	if tb1 != tb2 {
		t.Error("same seed must give same testbench")
	}
}

func TestSessionsDifferAcrossModels(t *testing.T) {
	req := testReq("fsm_vending", edatool.Verilog)
	outs := map[string]string{}
	for _, m := range Profiles() {
		c, _ := m.NewSession(req).GenerateRTL(nil)
		outs[m.Name()] = c
	}
	// At least the weakest and strongest should differ in defect content
	// on a hard problem... they may coincide; check determinism instead:
	for name, c := range outs {
		if c == "" {
			t.Errorf("%s produced empty code", name)
		}
	}
}

func TestGenerationErrorRatesOrdering(t *testing.T) {
	// Across the suite, Claude's Verilog generations must compile more
	// often than Llama's, matching the calibration ordering.
	count := func(model *Profile) int {
		ok := 0
		for _, p := range testSuite.Problems {
			s := model.NewSession(GenRequest{Problem: p, Language: edatool.Verilog})
			code, _ := s.GenerateRTL(nil)
			comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: "d.v", Text: code})
			if comp.OK {
				ok++
			}
		}
		return ok
	}
	claude := count(ProfileByName("claude-3.5-sonnet"))
	llama := count(ProfileByName("llama3-70b"))
	if claude <= llama {
		t.Errorf("claude syntax-clean %d should exceed llama %d", claude, llama)
	}
	t.Logf("syntax-clean generations: claude %d/156, llama %d/156", claude, llama)
}

func TestVHDLLlamaMostlyBroken(t *testing.T) {
	model := ProfileByName("llama3-70b")
	ok := 0
	for _, p := range testSuite.Problems {
		s := model.NewSession(GenRequest{Problem: p, Language: edatool.VHDL})
		code, _ := s.GenerateRTL(nil)
		if edatool.Compile(edatool.VHDL, edatool.Source{Name: "d.vhd", Text: code}).OK {
			ok++
		}
	}
	// Paper baseline: 1.28% (2/156). Allow a loose band.
	if ok > 20 {
		t.Errorf("llama3 VHDL should be almost always broken, got %d/156 clean", ok)
	}
}

func TestRepairWithLocalisedFeedback(t *testing.T) {
	// A localised syntax defect must eventually be repaired by a strong
	// model given accurate feedback.
	model := ProfileByName("claude-3.5-sonnet")
	prob := testSuite.ByID("counter_up_w8")
	for seed := 0; seed < 5; seed++ {
		s := model.NewSession(GenRequest{Problem: prob, Language: edatool.Verilog}).(*simSession)
		// Force a known defect set.
		s.started = true
		s.rtlMuts = sampleMutations(rand.New(rand.NewSource(int64(seed))), s.golden(), true, MutSyntax, 1)
		if len(s.rtlMuts) == 0 {
			t.Fatal("no mutation sites in golden")
		}
		m := s.rtlMuts[0]
		fb := &Feedback{Kind: SyntaxFeedback, Items: []FeedbackItem{{
			Line: 3, Message: "error mentioning " + m.Marker, Snippet: m.Marker, Hint: m.Desc,
		}}}
		fixed := false
		for i := 0; i < 10; i++ {
			code, _ := s.GenerateRTL(fb)
			if code == s.golden() {
				fixed = true
				break
			}
		}
		if !fixed {
			t.Errorf("seed %d: localised defect never repaired in 10 iterations", seed)
		}
	}
}

func TestMutationsChangeCode(t *testing.T) {
	// Property: every sampled mutation changes the source text.
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testSuite.Problems[int(pick)%len(testSuite.Problems)]
		for _, verilog := range []bool{true, false} {
			src := p.GoldenVerilog
			if !verilog {
				src = p.GoldenVHDL
			}
			for _, kind := range []MutKind{MutSyntax, MutFunctional} {
				muts := sampleMutations(rng, src, verilog, kind, 1)
				for _, m := range muts {
					if m.Apply(src) == src {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFunctionalMutationsStillCompile(t *testing.T) {
	// Functional mutations must not introduce syntax errors, otherwise
	// the defect taxonomy collapses.
	rng := rand.New(rand.NewSource(7))
	bad := 0
	total := 0
	for _, p := range testSuite.Problems {
		muts := sampleMutations(rng, p.GoldenVerilog, true, MutFunctional, 1)
		for _, m := range muts {
			total++
			src := m.Apply(p.GoldenVerilog)
			if !edatool.Compile(edatool.Verilog, edatool.Source{Name: "d.v", Text: src}).OK {
				bad++
				t.Logf("%s: functional mutation %q broke compilation", p.ID, m.Desc)
			}
		}
	}
	if bad > total/20 {
		t.Errorf("%d/%d functional mutations broke compilation", bad, total)
	}
}

func TestSyntaxMutationsBreakCompilation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	silent := 0
	total := 0
	for _, p := range testSuite.Problems {
		muts := sampleMutations(rng, p.GoldenVerilog, true, MutSyntax, 1)
		for _, m := range muts {
			total++
			src := m.Apply(p.GoldenVerilog)
			if edatool.Compile(edatool.Verilog, edatool.Source{Name: "d.v", Text: src}).OK {
				silent++
				t.Logf("%s: syntax mutation %q compiled cleanly", p.ID, m.Desc)
			}
		}
	}
	// A small fraction of "syntax" mutations may be harmless in context;
	// the bulk must genuinely break the compile.
	if silent > total/5 {
		t.Errorf("%d/%d syntax mutations were silent", silent, total)
	}
}

func TestTestbenchCoverageSubsetting(t *testing.T) {
	weak := ProfileByName("llama3-70b")
	strong := ProfileByName("claude-3.5-sonnet")
	prob := testSuite.ByID("counter_up_w8") // sequential: prefix coverage
	wTB, _ := weak.NewSession(testReq("counter_up_w8", edatool.Verilog)).GenerateTestbench()
	sTB, _ := strong.NewSession(testReq("counter_up_w8", edatool.Verilog)).GenerateTestbench()
	// The stronger model's bench should exercise more checks.
	if strings.Count(sTB, "Test Case") <= strings.Count(wTB, "Test Case") {
		t.Errorf("coverage ordering violated: claude %d checks, llama %d checks",
			strings.Count(sTB, "Test Case"), strings.Count(wTB, "Test Case"))
	}
	_ = prob
}

func TestReplaceNth(t *testing.T) {
	if got := replaceNth("a.b.c.d", ".", "-", 1); got != "a.b-c.d" {
		t.Errorf("replaceNth = %q", got)
	}
	if got := replaceNth("abc", "x", "y", 0); got != "abc" {
		t.Errorf("missing pattern should be no-op, got %q", got)
	}
	if got := replaceNth("aa", "a", "b", 5); got != "aa" {
		t.Errorf("out-of-range occurrence should be no-op, got %q", got)
	}
}
