// Package llm provides the simulated large-language-model layer of the
// reproduction. The real system calls Claude 3.5 Sonnet, GPT-4o, or
// Llama3-70B over an API; offline we substitute a deterministic
// generative model per profile whose *defect statistics* are calibrated
// to each model's measured zero-shot quality (Table 1 baselines).
//
// Generation retrieves the problem's golden implementation and injects
// real code defects (package mutations); testbench generation emits a
// real self-checking bench covering a model-dependent fraction of the
// behaviour space. Everything downstream — compiler logs, simulation
// logs, agent feedback, repair convergence — is genuinely computed by
// the EDA substrate, so the AIVRIL 2 loop outcomes are measured, not
// scripted.
package llm

import (
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/edatool"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// FeedbackKind distinguishes Review-Agent from Verification-Agent
// corrective prompts.
type FeedbackKind int

// Feedback kinds.
const (
	SyntaxFeedback FeedbackKind = iota
	FunctionalFeedback
)

// FeedbackItem is one localised issue in a corrective prompt.
type FeedbackItem struct {
	Line    int
	Message string
	Snippet string
	Hint    string
}

// Feedback is a corrective prompt from the Review or Verification agent.
type Feedback struct {
	Kind  FeedbackKind
	Items []FeedbackItem
	Raw   string
}

// GenRequest identifies one generation task.
type GenRequest struct {
	Problem  *bench.Problem
	Language edatool.Language
}

// Model is the LLM-agnostic interface the agents program against —
// the reproduction's analogue of "any chat-completion endpoint".
type Model interface {
	Name() string
	License() string
	// NewSession opens a per-(problem, language) conversation. The Code
	// Agent holds one session for the whole optimization pipeline, so
	// the model can track its own revision state.
	NewSession(req GenRequest) Session
}

// Session is one conversation: testbench generation, RTL generation,
// and feedback-driven regeneration. Latencies are in seconds, modelling
// API wall-clock per the profile's token-rate.
type Session interface {
	GenerateTestbench() (code string, latency float64)
	GenerateRTL(feedback *Feedback) (code string, latency float64)
	// RepairTestbench regenerates the testbench after syntax feedback.
	RepairTestbench(feedback *Feedback) (code string, latency float64)
	// AnalysisLatency models the Review/Verification agent's own LLM
	// call for a corrective prompt with the given number of findings.
	AnalysisLatency(kind FeedbackKind, items int) float64
}

// LangSkill calibrates one model on one language.
type LangSkill struct {
	SyntaxErrRate   float64 // P(initial RTL has >=1 syntax defect)
	ExtraSyntaxErr  float64 // P(each additional defect)
	FuncErrRate     float64 // P(functional defect | syntactically clean intent)
	ExtraFuncErr    float64
	RepairSkill     float64 // P(fix a feedback-localised syntax defect per iteration)
	BlindRepair     float64 // P(fix an unlocalised defect per iteration)
	RepairNoise     float64 // P(a repair introduces a fresh syntax defect)
	FuncRepairSkill float64 // P(fix a functional defect per verification iteration)
	// FuncNoiseOnRepair is the chance a syntax repair silently changes
	// behaviour (introduces a functional defect), the mechanism that
	// keeps heavily-repaired designs below the clean-intent rate.
	FuncNoiseOnRepair float64
	TBCoverage        float64 // fraction of reference vectors the self-TB exercises
	TBSyntaxErrRate   float64 // P(generated TB has a syntax defect)
	// TBFuncErrRate is the chance the self-generated bench encodes a
	// wrong expectation. A wrong bench makes correct RTL "fail"
	// self-verification, burning functional iterations and sometimes
	// luring the model into breaking good code (the VeriAssist
	// degradation the paper cites for self-generated testbenches).
	TBFuncErrRate float64
	// Latency model (seconds per call).
	GenLatency    float64 // one full-RTL generation
	TBGenLatency  float64 // one testbench generation
	RepairLatency float64 // one feedback-driven regeneration
	ReviewLatency float64 // Review Agent log-analysis call
	VerifyLatency float64 // Verification Agent log-analysis call
}

// Profile is one simulated LLM.
type Profile struct {
	ModelName    string
	ModelLicense string
	Verilog      LangSkill
	VHDL         LangSkill
}

// Name implements Model.
func (p *Profile) Name() string { return p.ModelName }

// License implements Model.
func (p *Profile) License() string { return p.ModelLicense }

// skill returns the language-specific calibration.
func (p *Profile) skill(lang edatool.Language) LangSkill {
	if lang == edatool.Verilog {
		return p.Verilog
	}
	return p.VHDL
}

// NewSession implements Model. The session RNG sits behind a counted
// source so the conversation state — including the exact position in
// the deterministic defect stream — can be checkpointed and restored
// (see snapshot.go).
func (p *Profile) NewSession(req GenRequest) Session {
	h := fnv.New64a()
	h.Write([]byte(p.ModelName))
	h.Write([]byte{0})
	h.Write([]byte(req.Problem.ID))
	h.Write([]byte{byte(req.Language)})
	seed := int64(h.Sum64())
	src := newCountedSource(seed)
	return &simSession{
		profile: p,
		req:     req,
		skill:   p.skill(req.Language),
		seed:    seed,
		src:     src,
		rng:     rand.New(src),
	}
}

// hardnessFactor scales defect probabilities by problem difficulty so
// harder problems (FSMs) fail more often than gates, while the suite
// average stays near the calibrated rate (mean hardness ~= 0.3). The
// exponentiation in effectiveRate keeps extreme rates extreme: a model
// that is broken 99% of the time stays broken even on easy problems.
func hardnessFactor(h float64) float64 {
	return 0.7 + h
}

// effectiveRate applies the hardness factor geometrically:
// rate^(1/hf) — hf > 1 (hard problem) raises the probability,
// hf < 1 lowers it, and rates near 0 or 1 stay near 0 or 1.
func effectiveRate(base, hardness float64) float64 {
	if base <= 0 {
		return 0
	}
	if base >= 1 {
		return 1
	}
	hf := hardnessFactor(hardness)
	// p^(1/hf): implemented via exp/log-free iteration is overkill;
	// math.Pow is fine here.
	return clamp01(pow(base, 1/hf))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.98 {
		return 0.98
	}
	return x
}

// Profiles returns the three model profiles evaluated in the paper,
// calibrated to the Table 1 baseline pass rates and Fig. 3 latencies.
//
// Syntax/functional error rates derive directly from Table 1:
// baseline pass@1S = 1 - SyntaxErrRate and
// baseline pass@1F = pass@1S * (1 - FuncErrRate).
// Repair skills are tuned so the *measured* loop outcomes land near the
// paper's AIVRIL2 rows (100% syntax everywhere except Llama3-VHDL; the
// functional rates in Table 1) with the paper's reported iteration
// counts (~2-4 syntax cycles, ~3-5 functional cycles).
func Profiles() []*Profile {
	return []*Profile{
		{
			ModelName: "llama3-70b", ModelLicense: "Open Source",
			Verilog: LangSkill{
				SyntaxErrRate: 0.2885, ExtraSyntaxErr: 0.35,
				FuncErrRate: 0.75, ExtraFuncErr: 0.25,
				RepairSkill: 0.82, BlindRepair: 0.10, RepairNoise: 0.10,
				FuncRepairSkill: 0.25, FuncNoiseOnRepair: 0.25,
				TBCoverage: 0.05, TBSyntaxErrRate: 0.25, TBFuncErrRate: 0.50,
				GenLatency: 7.5, TBGenLatency: 3.0, RepairLatency: 3.0,
				ReviewLatency: 1.2, VerifyLatency: 0.6,
			},
			VHDL: LangSkill{
				SyntaxErrRate: 0.9872, ExtraSyntaxErr: 0.75,
				FuncErrRate: 0.95, ExtraFuncErr: 0.45,
				RepairSkill: 0.37, BlindRepair: 0.05, RepairNoise: 0.22,
				FuncRepairSkill: 0.28, FuncNoiseOnRepair: 0.28,
				TBCoverage: 0.08, TBSyntaxErrRate: 0.60, TBFuncErrRate: 0.45,
				GenLatency: 6.68, TBGenLatency: 1.8, RepairLatency: 1.6,
				ReviewLatency: 0.8, VerifyLatency: 0.6,
			},
		},
		{
			ModelName: "gpt-4o", ModelLicense: "Closed Source",
			Verilog: LangSkill{
				SyntaxErrRate: 0.2821, ExtraSyntaxErr: 0.30,
				FuncErrRate: 0.46, ExtraFuncErr: 0.20,
				RepairSkill: 0.90, BlindRepair: 0.15, RepairNoise: 0.06,
				FuncRepairSkill: 0.30, FuncNoiseOnRepair: 0.20,
				TBCoverage: 0.06, TBSyntaxErrRate: 0.15, TBFuncErrRate: 0.45,
				GenLatency: 5.7, TBGenLatency: 2.4, RepairLatency: 2.6,
				ReviewLatency: 1.2, VerifyLatency: 1.0,
			},
			VHDL: LangSkill{
				SyntaxErrRate: 0.609, ExtraSyntaxErr: 0.40,
				FuncErrRate: 0.33, ExtraFuncErr: 0.22,
				RepairSkill: 0.85, BlindRepair: 0.12, RepairNoise: 0.08,
				FuncRepairSkill: 0.25, FuncNoiseOnRepair: 0.55,
				TBCoverage: 0.05, TBSyntaxErrRate: 0.25, TBFuncErrRate: 0.45,
				GenLatency: 6.5, TBGenLatency: 2.2, RepairLatency: 2.4,
				ReviewLatency: 1.2, VerifyLatency: 0.6,
			},
		},
		{
			ModelName: "claude-3.5-sonnet", ModelLicense: "Closed Source",
			Verilog: LangSkill{
				SyntaxErrRate: 0.0897, ExtraSyntaxErr: 0.20,
				FuncErrRate: 0.50, ExtraFuncErr: 0.15,
				RepairSkill: 0.95, BlindRepair: 0.20, RepairNoise: 0.03,
				FuncRepairSkill: 0.38, FuncNoiseOnRepair: 0.12,
				TBCoverage: 0.08, TBSyntaxErrRate: 0.08, TBFuncErrRate: 0.28,
				GenLatency: 10.8, TBGenLatency: 3.0, RepairLatency: 3.1,
				ReviewLatency: 1.4, VerifyLatency: 1.5,
			},
			VHDL: LangSkill{
				SyntaxErrRate: 0.1154, ExtraSyntaxErr: 0.22,
				FuncErrRate: 0.56, ExtraFuncErr: 0.18,
				RepairSkill: 0.93, BlindRepair: 0.18, RepairNoise: 0.04,
				FuncRepairSkill: 0.22, FuncNoiseOnRepair: 0.15,
				TBCoverage: 0.05, TBSyntaxErrRate: 0.10, TBFuncErrRate: 0.45,
				GenLatency: 10.58, TBGenLatency: 3.2, RepairLatency: 5.8,
				ReviewLatency: 1.5, VerifyLatency: 3.2,
			},
		},
	}
}

// ProfileByName returns the named profile or nil.
func ProfileByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.ModelName == name {
			return p
		}
	}
	return nil
}
