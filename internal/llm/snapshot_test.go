package llm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
)

func snapshotSession(t *testing.T, prob *bench.Problem, lang edatool.Language) *simSession {
	t.Helper()
	p := ProfileByName("claude-3.5-sonnet")
	if p == nil {
		t.Fatal("profile missing")
	}
	return p.NewSession(GenRequest{Problem: prob, Language: lang}).(*simSession)
}

// feedbackFor builds a corrective prompt that exercises the repair
// paths.
func feedbackFor(kind FeedbackKind) *Feedback {
	return &Feedback{Kind: kind, Items: []FeedbackItem{
		{Line: 3, Message: "syntax error near x"},
		{Line: 7, Message: "unexpected token"},
	}}
}

// conversationTurns is a fixed six-turn conversation covering every
// session op the pipeline uses.
func conversationTurns(s *simSession) []func() (string, float64) {
	return []func() (string, float64){
		s.GenerateTestbench,
		func() (string, float64) { return s.RepairTestbench(feedbackFor(SyntaxFeedback)) },
		func() (string, float64) { return s.GenerateRTL(nil) },
		func() (string, float64) { return s.GenerateRTL(feedbackFor(SyntaxFeedback)) },
		func() (string, float64) { return s.GenerateRTL(feedbackFor(FunctionalFeedback)) },
		func() (string, float64) { return s.GenerateRTL(feedbackFor(SyntaxFeedback)) },
	}
}

// playTurns runs turns [from, to) and records artefact+latency pairs.
func playTurns(s *simSession, from, to int) []string {
	turns := conversationTurns(s)
	var out []string
	for i := from; i < to && i < len(turns); i++ {
		code, lat := turns[i]()
		out = append(out, code, fmt.Sprintf("%.9f", lat))
	}
	return out
}

// TestSessionSnapshotRoundTrip: play a fixed conversation; at every
// turn boundary snapshot a fresh session fast-forwarded to that point,
// restore the snapshot into a brand-new session, play the remaining
// turns, and demand byte-identical artefacts and latencies. This is
// the foundation the crash-resumable pipeline stands on.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	suite := bench.NewSuite()
	const turns = 6
	for _, id := range []string{"gate_and", "cmp_lt_w4", "fsm_shift_ena"} {
		prob := suite.ByID(id)
		if prob == nil {
			t.Fatalf("problem %q missing", id)
		}
		for _, lang := range []edatool.Language{edatool.Verilog, edatool.VHDL} {
			ref := snapshotSession(t, prob, lang)
			want := playTurns(ref, 0, turns)

			for b := 0; b <= turns; b++ {
				pre := snapshotSession(t, prob, lang)
				playTurns(pre, 0, b)
				snap, err := pre.Snapshot()
				if err != nil {
					t.Fatalf("%s/%s turn %d: snapshot: %v", id, lang, b, err)
				}
				post := snapshotSession(t, prob, lang)
				if err := post.Restore(snap); err != nil {
					t.Fatalf("%s/%s turn %d: restore: %v", id, lang, b, err)
				}
				got := playTurns(post, b, turns)
				wantTail := want[2*b:]
				if len(got) != len(wantTail) {
					t.Fatalf("%s/%s turn %d: tail length %d, want %d", id, lang, b, len(got), len(wantTail))
				}
				for k := range got {
					if got[k] != wantTail[k] {
						t.Fatalf("%s/%s turn %d: output %d diverged after restore", id, lang, b, k)
					}
				}
			}
		}
	}
}

// TestSnapshotRejectsForeignSeed: a snapshot must not restore into a
// session for a different (model, problem, language) conversation.
func TestSnapshotRejectsForeignSeed(t *testing.T) {
	suite := bench.NewSuite()
	a := snapshotSession(t, suite.ByID("gate_and"), edatool.Verilog)
	b := snapshotSession(t, suite.ByID("gate_or"), edatool.Verilog)
	a.GenerateTestbench()
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err == nil {
		t.Error("restore accepted a snapshot from a different conversation")
	}
}

// TestCountedSourceStreamIdentity: wrapping the stdlib source in the
// draw counter must not change the stream — this is what keeps every
// golden-pinned artefact byte-identical — and restoring by discarding
// N draws lands on the same position.
func TestCountedSourceStreamIdentity(t *testing.T) {
	plain := rand.NewSource(42).(rand.Source64)
	counted := newCountedSource(42)
	rng := rand.New(counted)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		if ref.Float64() != rng.Float64() {
			t.Fatalf("rand.Rand stream diverged at draw %d", i)
		}
	}
	_ = plain

	direct := newCountedSource(7)
	for i := 0; i < 333; i++ {
		direct.Int63()
	}
	replay := newCountedSource(7)
	for i := uint64(0); i < direct.n; i++ {
		replay.src.Int63()
	}
	replay.n = direct.n
	for i := 0; i < 100; i++ {
		if direct.Int63() != replay.Int63() {
			t.Fatalf("replayed source diverged at draw %d", i)
		}
	}
}
