package llm

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
)

// TestReferenceBenchMutationAdequacy measures the kill rate of the
// suite's reference testbenches against injected functional mutants.
// This validates the measurement chain end to end: if the reference
// benches could not observe the defects the LLM layer injects, every
// pass@1F number in the reproduction would be inflated.
func TestReferenceBenchMutationAdequacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite mutation analysis")
	}
	rng := rand.New(rand.NewSource(42))
	killed, survived, total := 0, 0, 0
	for i, p := range testSuite.Problems {
		if i%3 != 0 { // sample a third of the suite
			continue
		}
		muts := sampleMutations(rng, p.GoldenVerilog, true, MutFunctional, 2)
		for _, m := range muts {
			src := m.Apply(p.GoldenVerilog)
			comp := edatool.Compile(edatool.Verilog, edatool.Source{Name: "d.v", Text: src})
			if !comp.OK {
				continue // miscategorised mutant; counted elsewhere
			}
			total++
			res := edatool.Simulate(edatool.Verilog, bench.TBName, 200_000,
				edatool.Source{Name: "d.v", Text: src},
				edatool.Source{Name: "tb.v", Text: p.RefTBVerilog})
			if res.Passed {
				survived++
				t.Logf("%s: mutant %q survives the reference bench", p.ID, m.Desc)
			} else {
				killed++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mutants generated")
	}
	rate := float64(killed) / float64(total)
	t.Logf("reference-bench kill rate: %d/%d = %.1f%%", killed, total, 100*rate)
	if rate < 0.60 {
		t.Errorf("kill rate %.2f too low: reference benches cannot observe injected defects", rate)
	}
}

// TestAgentBenchWeakerThanReference verifies the coverage asymmetry the
// functional loop depends on: the low-coverage self-generated bench must
// let strictly more mutants survive than the reference bench does.
func TestAgentBenchWeakerThanReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite mutation analysis")
	}
	model := ProfileByName("claude-3.5-sonnet")
	rng := rand.New(rand.NewSource(99))
	refKills, agentKills, total := 0, 0, 0
	for i, p := range testSuite.Problems {
		if i%5 != 0 {
			continue
		}
		sess := model.NewSession(GenRequest{Problem: p, Language: edatool.Verilog}).(*simSession)
		// Build an uncorrupted agent bench for a fair coverage-only test.
		agentTB, _ := sess.GenerateTestbench()
		if sess.tbMuts != nil || len(sess.tbCode) == 0 {
			agentTB = sess.tbCode // strip injected syntax defects
		}
		muts := sampleMutations(rng, p.GoldenVerilog, true, MutFunctional, 2)
		for _, m := range muts {
			src := m.Apply(p.GoldenVerilog)
			if !edatool.Compile(edatool.Verilog, edatool.Source{Name: "d.v", Text: src}).OK {
				continue
			}
			total++
			ref := edatool.Simulate(edatool.Verilog, bench.TBName, 200_000,
				edatool.Source{Name: "d.v", Text: src},
				edatool.Source{Name: "tb.v", Text: p.RefTBVerilog})
			if !ref.Passed {
				refKills++
			}
			ag := edatool.Simulate(edatool.Verilog, bench.TBName, 200_000,
				edatool.Source{Name: "d.v", Text: src},
				edatool.Source{Name: "tb.v", Text: agentTB})
			if !ag.Passed {
				agentKills++
			}
		}
	}
	t.Logf("kills out of %d mutants: reference %d, agent bench %d", total, refKills, agentKills)
	if agentKills > refKills {
		t.Errorf("agent bench (%d kills) must not out-detect the reference bench (%d)", agentKills, refKills)
	}
}
