package llm

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// ResumableSession is a Session whose full conversation state can be
// serialized and later restored into a fresh session for the same
// (model, problem, language) task. The simulated model implements it
// by recording its RNG position and active defect sets; a real API
// provider would implement it by recording the conversation history.
type ResumableSession interface {
	Session
	// Snapshot serializes the session state as of now.
	Snapshot() ([]byte, error)
	// Restore replaces the session state with a snapshot previously
	// taken from a session of the same task. Restoring a snapshot from
	// a different task is an error.
	Restore(data []byte) error
}

// countedSource wraps math/rand's seeded source and counts the draws
// consumed. Both Int63 and Uint64 advance the underlying generator by
// exactly one step, so (seed, draws) fully determines the generator
// state: a restore re-seeds and discards the counted number of draws,
// landing byte-for-byte on the original stream position.
type countedSource struct {
	src rand.Source64
	n   uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// mutSnapshot serializes one active Mutation. The closure is re-bound
// on restore from the deterministic site enumeration of the base
// source the defect was sampled from.
type mutSnapshot struct {
	Kind   MutKind `json:"kind"`
	Desc   string  `json:"desc"`
	Marker string  `json:"marker"`
	Site   int     `json:"site"`
}

// sessionSnapshot is the serialized form of a simSession. Draws pins
// the RNG position; the mutation lists pin the active defect sets; the
// flags pin the conversation phase.
type sessionSnapshot struct {
	Seed    int64         `json:"seed"`
	Draws   uint64        `json:"draws"`
	Started bool          `json:"started"`
	Cogen   bool          `json:"cogen"`
	TBCode  string        `json:"tb_code,omitempty"`
	RTLMuts []mutSnapshot `json:"rtl_muts,omitempty"`
	TBMuts  []mutSnapshot `json:"tb_muts,omitempty"`
}

func snapshotMuts(muts []Mutation) []mutSnapshot {
	if len(muts) == 0 {
		return nil
	}
	out := make([]mutSnapshot, len(muts))
	for i, m := range muts {
		out[i] = mutSnapshot{Kind: m.Kind, Desc: m.Desc, Marker: m.Marker, Site: m.site}
	}
	return out
}

// enumerateSites exposes the deterministic site enumeration snapshots
// index into.
func enumerateSites(src string, verilog bool, kind MutKind) []mutantSite {
	if kind == MutSyntax {
		return syntaxSites(src, verilog)
	}
	return funcSites(src, verilog)
}

// restoreMuts re-binds serialized mutations against the base source
// they were sampled from, validating that the referenced sites still
// describe the same defects.
func restoreMuts(snaps []mutSnapshot, baseSrc string, verilog bool) ([]Mutation, error) {
	if len(snaps) == 0 {
		return nil, nil
	}
	// The enumerations are cheap and per-kind, so rebuild lazily.
	var byKind [2][]mutantSite
	have := [2]bool{}
	out := make([]Mutation, len(snaps))
	for i, s := range snaps {
		k := int(s.Kind)
		if k < 0 || k > 1 {
			return nil, fmt.Errorf("llm: snapshot mutation %d has invalid kind %d", i, s.Kind)
		}
		if !have[k] {
			byKind[k] = enumerateSites(baseSrc, verilog, s.Kind)
			have[k] = true
		}
		sites := byKind[k]
		if s.Site < 0 || s.Site >= len(sites) {
			return nil, fmt.Errorf("llm: snapshot mutation %d site %d out of range (%d sites)", i, s.Site, len(sites))
		}
		site := sites[s.Site]
		if site.desc != s.Desc {
			return nil, fmt.Errorf("llm: snapshot mutation %d site %d is %q, snapshot says %q", i, s.Site, site.desc, s.Desc)
		}
		out[i] = Mutation{Kind: s.Kind, Desc: s.Desc, Marker: s.Marker, Apply: site.apply, site: s.Site}
	}
	return out, nil
}

// Snapshot implements ResumableSession.
func (s *simSession) Snapshot() ([]byte, error) {
	return json.Marshal(sessionSnapshot{
		Seed:    s.seed,
		Draws:   s.src.n,
		Started: s.started,
		Cogen:   s.cogen,
		TBCode:  s.tbCode,
		RTLMuts: snapshotMuts(s.rtlMuts),
		TBMuts:  snapshotMuts(s.tbMuts),
	})
}

// Restore implements ResumableSession: it rewinds the session to the
// snapshotted conversation state, including the exact RNG position, so
// every subsequent call produces the same output an uninterrupted
// session would have.
func (s *simSession) Restore(data []byte) error {
	var snap sessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("llm: decoding session snapshot: %w", err)
	}
	if snap.Seed != s.seed {
		return fmt.Errorf("llm: snapshot is for a different task (seed %d, session %d)", snap.Seed, s.seed)
	}
	rtlMuts, err := restoreMuts(snap.RTLMuts, s.golden(), s.verilog())
	if err != nil {
		return err
	}
	tbMuts, err := restoreMuts(snap.TBMuts, snap.TBCode, s.verilog())
	if err != nil {
		return err
	}
	src := newCountedSource(s.seed)
	for i := uint64(0); i < snap.Draws; i++ {
		src.src.Int63()
	}
	src.n = snap.Draws
	s.src = src
	s.rng = rand.New(src)
	s.started = snap.Started
	s.cogen = snap.Cogen
	s.tbCode = snap.TBCode
	s.rtlMuts = rtlMuts
	s.tbMuts = tbMuts
	return nil
}
