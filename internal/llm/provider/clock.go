package provider

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the middleware stack. Every middleware
// takes an injected Clock, so refill math, cooldowns, backoff and
// deadlines are all unit-testable with MockClock and zero real sleeps.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case and nil after a full sleep.
	Sleep(ctx context.Context, d time.Duration) error
	// AfterFunc arms f to run once after d. f runs on an unspecified
	// goroutine (real clock) or inside an Advance call (mock clock).
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is the stoppable handle returned by Clock.AfterFunc.
// Stop reports whether it prevented the function from running —
// exactly time.Timer semantics, so *time.Timer satisfies it.
type Timer interface {
	Stop() bool
	Reset(d time.Duration) bool
}

// RealClock returns the process wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// MockClock is a deterministic Clock for tests. Time moves only when
// the test calls Advance/AdvanceToNext — or, in auto mode, when a
// Sleep consumes its own duration — so no middleware test ever waits
// on the wall clock.
type MockClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	seq    int
	timers []*mockTimer
	auto   bool
}

// NewMockClock returns a manually advanced mock clock at a fixed
// epoch.
func NewMockClock() *MockClock {
	c := &MockClock{now: time.Unix(1_700_000_000, 0)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// NewAutoClock returns a mock clock whose Sleep calls advance the
// clock themselves (firing any timers that come due on the way). A
// single-threaded pipeline run over sleeping providers then completes
// instantly and deterministically with no driver goroutine.
func NewAutoClock() *MockClock {
	c := NewMockClock()
	c.auto = true
	return c
}

type mockTimer struct {
	clk      *MockClock
	deadline time.Time
	seq      int
	fn       func()        // AfterFunc callback (nil for sleepers)
	ch       chan struct{} // sleeper wakeup (nil for AfterFunc timers)
	armed    bool
}

// Now returns the mock time.
func (c *MockClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Pending returns the number of armed timers and blocked sleepers.
func (c *MockClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// BlockUntil blocks until at least n timers/sleepers are pending —
// the rendezvous a test needs before advancing past a sleeping
// goroutine.
func (c *MockClock) BlockUntil(n int) {
	c.mu.Lock()
	for len(c.timers) < n {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Advance moves the clock forward by d, firing due timers in deadline
// order (ties broken by arm order).
func (c *MockClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.advanceTo(c.now.Add(d), nil)
	c.mu.Unlock()
}

// AdvanceToNext jumps to the earliest pending deadline and fires it
// (plus anything sharing that instant). It reports whether a timer was
// pending.
func (c *MockClock) AdvanceToNext() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.earliestDue(farFuture)
	if t == nil {
		return false
	}
	c.advanceTo(t.deadline, nil)
	return true
}

var farFuture = time.Unix(1<<60, 0)

// advanceTo fires due timers in order up to target. Callbacks run with
// the lock released. When stop is non-nil, firing halts early once it
// reports true (auto Sleep honouring context cancellation).
// Caller holds c.mu.
func (c *MockClock) advanceTo(target time.Time, stop func() bool) {
	for {
		t := c.earliestDue(target)
		if t == nil {
			break
		}
		if t.deadline.After(c.now) {
			c.now = t.deadline
		}
		c.remove(t)
		if t.fn != nil {
			c.mu.Unlock()
			t.fn()
			c.mu.Lock()
		} else {
			close(t.ch)
		}
		if stop != nil && stop() {
			return
		}
	}
	if target.After(c.now) {
		c.now = target
	}
}

// earliestDue returns the armed timer with the smallest
// (deadline, seq) at or before target, or nil. Caller holds c.mu.
func (c *MockClock) earliestDue(target time.Time) *mockTimer {
	var best *mockTimer
	for _, t := range c.timers {
		if t.deadline.After(target) {
			continue
		}
		if best == nil || t.deadline.Before(best.deadline) ||
			(t.deadline.Equal(best.deadline) && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

// arm registers a timer. Caller holds c.mu.
func (c *MockClock) arm(d time.Duration, fn func(), ch chan struct{}) *mockTimer {
	c.seq++
	t := &mockTimer{clk: c, deadline: c.now.Add(d), seq: c.seq, fn: fn, ch: ch, armed: true}
	c.timers = append(c.timers, t)
	c.cond.Broadcast()
	return t
}

// remove disarms a timer. Caller holds c.mu.
func (c *MockClock) remove(t *mockTimer) {
	if !t.armed {
		return
	}
	t.armed = false
	for i, x := range c.timers {
		if x == t {
			c.timers[i] = c.timers[len(c.timers)-1]
			c.timers = c.timers[:len(c.timers)-1]
			return
		}
	}
}

// Sleep implements Clock. In auto mode it advances the clock itself;
// otherwise it blocks until an Advance reaches the deadline or ctx is
// done.
func (c *MockClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	if c.auto {
		c.advanceTo(c.now.Add(d), func() bool { return ctx.Err() != nil })
		c.mu.Unlock()
		return ctx.Err()
	}
	t := c.arm(d, nil, make(chan struct{}))
	c.mu.Unlock()
	select {
	case <-t.ch:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		c.remove(t)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// AfterFunc implements Clock.
func (c *MockClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	t := c.arm(d, f, nil)
	c.mu.Unlock()
	return t
}

// Stop implements Timer.
func (t *mockTimer) Stop() bool {
	c := t.clk
	c.mu.Lock()
	defer c.mu.Unlock()
	if !t.armed {
		return false
	}
	c.remove(t)
	return true
}

// Reset implements Timer.
func (t *mockTimer) Reset(d time.Duration) bool {
	c := t.clk
	c.mu.Lock()
	defer c.mu.Unlock()
	was := t.armed
	t.deadline = c.now.Add(d)
	c.seq++
	t.seq = c.seq
	if !was {
		t.armed = true
		c.timers = append(c.timers, t)
		c.cond.Broadcast()
	}
	return was
}
