package provider

import (
	"context"
	"sync"
	"time"
)

// Timeout enforces a per-attempt deadline. The call runs under a
// context whose Done fires — and whose Err turns DeadlineExceeded —
// when the injected clock reaches the deadline, so a provider blocked
// in a clock Sleep unblocks promptly and the middleware maps the
// outcome to ClassTimeout. Sitting innermost in the standard stack,
// each retry attempt gets a fresh deadline.
//
// The deadline contexts are pooled: a completed call whose timer was
// stopped in time and whose Done channel was never demanded returns
// its context to the pool, keeping the steady-state offline path
// allocation-free.
type Timeout struct {
	clock Clock
	d     time.Duration
	pool  sync.Pool
}

// NewTimeout returns a per-call timeout of d.
func NewTimeout(clock Clock, d time.Duration) *Timeout {
	return &Timeout{clock: clock, d: d}
}

// Name implements Middleware.
func (t *Timeout) Name() string { return "timeout" }

// Wrap implements Middleware.
func (t *Timeout) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		tc := t.acquire(ctx)
		resp, err := next(tc, req)
		expired := tc.expired()
		t.release(tc)
		if expired {
			return Response{}, &Error{Class: ClassTimeout, Op: req.Op, Err: context.DeadlineExceeded}
		}
		return resp, err
	}
}

func (t *Timeout) acquire(parent context.Context) *timeoutCtx {
	tc, _ := t.pool.Get().(*timeoutCtx)
	if tc == nil {
		tc = &timeoutCtx{}
	}
	tc.parent = parent
	tc.deadline = t.clock.Now().Add(t.d)
	tc.exp = false
	tc.closed = false
	if tc.timer == nil {
		tc.timer = t.clock.AfterFunc(t.d, tc.expire)
	} else {
		tc.timer.Reset(t.d)
	}
	return tc
}

// release stops the deadline timer and pools the context when that is
// provably safe: the timer cannot fire anymore and nobody ever asked
// for the Done channel (so no goroutine or select can still hold a
// reference into it).
func (t *Timeout) release(tc *timeoutCtx) {
	stopped := tc.timer.Stop()
	tc.mu.Lock()
	if tc.stop != nil {
		close(tc.stop)
		tc.stop = nil
	}
	reusable := stopped && !tc.exp && tc.done == nil
	tc.mu.Unlock()
	if reusable {
		tc.parent = context.Background()
		t.pool.Put(tc)
	}
}

// timeoutCtx is a context.Context whose deadline is driven by the
// middleware's Clock rather than the runtime timer heap.
type timeoutCtx struct {
	parent   context.Context
	deadline time.Time
	timer    Timer

	mu     sync.Mutex
	exp    bool
	done   chan struct{} // created lazily on first Done()
	closed bool
	stop   chan struct{} // stops the parent-cancellation watcher
}

// Deadline implements context.Context.
func (c *timeoutCtx) Deadline() (time.Time, bool) {
	if pd, ok := c.parent.Deadline(); ok && pd.Before(c.deadline) {
		return pd, true
	}
	return c.deadline, true
}

// Err implements context.Context.
func (c *timeoutCtx) Err() error {
	c.mu.Lock()
	exp := c.exp
	c.mu.Unlock()
	if exp {
		return context.DeadlineExceeded
	}
	return c.parent.Err()
}

// Value implements context.Context.
func (c *timeoutCtx) Value(k any) any { return c.parent.Value(k) }

// Done implements context.Context. The channel is created on demand;
// the fast synchronous path never allocates it. Parent cancellation is
// propagated by a watcher goroutine that is likewise only started when
// someone actually selects on Done.
func (c *timeoutCtx) Done() <-chan struct{} {
	c.mu.Lock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.exp || c.parent.Err() != nil {
			close(c.done)
			c.closed = true
		} else if pd := c.parent.Done(); pd != nil {
			c.stop = make(chan struct{})
			go c.watch(pd, c.stop)
		}
	}
	d := c.done
	c.mu.Unlock()
	return d
}

func (c *timeoutCtx) watch(pd <-chan struct{}, stop chan struct{}) {
	select {
	case <-pd:
		c.mu.Lock()
		if c.done != nil && !c.closed {
			close(c.done)
			c.closed = true
		}
		c.mu.Unlock()
	case <-stop:
	}
}

// expire is the timer callback.
func (c *timeoutCtx) expire() {
	c.mu.Lock()
	c.exp = true
	if c.done != nil && !c.closed {
		close(c.done)
		c.closed = true
	}
	c.mu.Unlock()
}

func (c *timeoutCtx) expired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exp
}

var _ context.Context = (*timeoutCtx)(nil)
