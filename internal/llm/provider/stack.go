package provider

import "time"

// StackConfig parameterises the standard middleware chain. The zero
// value of each knob disables that middleware; DefaultStackConfig
// returns production-shaped settings that leave the offline provider's
// behavior untouched (no limiter, budgets the deterministic path never
// hits).
type StackConfig struct {
	// Clock drives every time-dependent middleware; nil = RealClock.
	Clock Clock
	// Trace, when non-nil, installs the tracing middleware feeding the
	// pipeline transcript hook.
	Trace func(stage, detail string)
	// Metrics, when non-nil, is installed as the metrics sink (shared
	// across providers if the caller wishes).
	Metrics *Metrics

	// RPS > 0 installs the token-bucket rate limiter.
	RPS          float64
	Burst        int
	RateFailFast bool // reject instead of waiting when the bucket is empty

	// Attempts > 1 installs retry-with-full-jitter.
	Attempts  int
	RetryBase time.Duration
	RetryCap  time.Duration
	RetrySeed int64

	// BreakerThreshold > 0 installs the circuit breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerProbes    int

	// Timeout > 0 installs the per-attempt timeout.
	Timeout time.Duration
}

// DefaultStackConfig returns the full production-shaped stack: 30s
// per-attempt timeout, 3 attempts with 100ms–2s full-jitter backoff,
// and a breaker opening after 8 consecutive infrastructure failures
// with a 10s cooldown and 2 half-open probes. The rate limiter is off
// by default — a deliberate choice for the offline provider, whose
// calls are wall-clock instant and must not be slowed to a synthetic
// rate.
func DefaultStackConfig() StackConfig {
	return StackConfig{
		Timeout:          30 * time.Second,
		Attempts:         3,
		RetryBase:        100 * time.Millisecond,
		RetryCap:         2 * time.Second,
		BreakerThreshold: 8,
		BreakerCooldown:  10 * time.Second,
		BreakerProbes:    2,
	}
}

// NewStack wraps p in the configured middleware chain. Ordering,
// outermost first (see docs/PROVIDERS.md for the rationale):
//
//	tracing -> metrics -> rate limiter -> retry -> breaker -> timeout -> provider
func NewStack(p Provider, cfg StackConfig) Provider {
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	var mws []Middleware
	if cfg.Trace != nil {
		mws = append(mws, NewTracing(clock, cfg.Trace))
	}
	if cfg.Metrics != nil {
		mws = append(mws, cfg.Metrics)
	}
	if cfg.RPS > 0 {
		l := NewRateLimiter(clock, cfg.RPS, cfg.Burst)
		if cfg.RateFailFast {
			l.FailFast()
		}
		mws = append(mws, l)
	}
	if cfg.Attempts > 1 {
		mws = append(mws, NewRetry(clock, cfg.Attempts, cfg.RetryBase, cfg.RetryCap, cfg.RetrySeed))
	}
	if cfg.BreakerThreshold > 0 {
		mws = append(mws, NewCircuitBreaker(clock, cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerProbes))
	}
	if cfg.Timeout > 0 {
		mws = append(mws, NewTimeout(clock, cfg.Timeout))
	}
	return Chain(p, mws...)
}
