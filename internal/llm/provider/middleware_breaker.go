package provider

import (
	"context"
	"errors"
	"sync"
	"time"
)

var errCircuitOpen = errors.New("circuit breaker open")

// BreakerState is the circuit breaker's coarse state.
type BreakerState int

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// CircuitBreaker sheds load from a failing provider. Closed, it counts
// consecutive infrastructure failures (ClassUnavailable, ClassTimeout;
// backpressure and caller errors do not trip it) and opens at
// Threshold. Open, it rejects everything with ClassCircuitOpen until
// Cooldown elapses, then goes half-open: up to Probes concurrent probe
// calls are admitted while the rest stay rejected. Probes successes
// close the breaker; any probe failure reopens it with a fresh
// cooldown.
type CircuitBreaker struct {
	clock       Clock
	threshold   int
	cooldown    time.Duration
	probeBudget int

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	openedAt  time.Time
	inFlight  int // probes in flight while half-open
	successes int // probe successes this half-open round
}

// NewCircuitBreaker returns a closed breaker. threshold and probes are
// clamped to at least 1.
func NewCircuitBreaker(clock Clock, threshold int, cooldown time.Duration, probes int) *CircuitBreaker {
	if threshold < 1 {
		threshold = 1
	}
	if probes < 1 {
		probes = 1
	}
	return &CircuitBreaker{clock: clock, threshold: threshold, cooldown: cooldown, probeBudget: probes}
}

// Name implements Middleware.
func (b *CircuitBreaker) Name() string { return "breaker" }

// State returns the current state, accounting for an elapsed cooldown
// (an open breaker whose cooldown has passed reports half-open).
func (b *CircuitBreaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock.Now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Wrap implements Middleware.
func (b *CircuitBreaker) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		probe, err := b.admit(req.Op)
		if err != nil {
			return Response{}, err
		}
		resp, err := next(ctx, req)
		b.record(probe, err)
		return resp, err
	}
}

// admit decides whether the call may proceed and whether it counts as
// a half-open probe.
func (b *CircuitBreaker) admit(op Op) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false, &Error{Class: ClassCircuitOpen, Op: op, Err: errCircuitOpen}
		}
		b.state = BreakerHalfOpen
		b.inFlight, b.successes = 0, 0
	}
	// Half-open: admit up to probeBudget concurrent probes.
	if b.inFlight >= b.probeBudget {
		return false, &Error{Class: ClassCircuitOpen, Op: op, Err: errCircuitOpen}
	}
	b.inFlight++
	return true, nil
}

// countsAsFailure: only infrastructure failures trip the breaker.
func countsAsFailure(err error) bool {
	switch ClassOf(err) {
	case ClassUnavailable, ClassTimeout:
		return true
	}
	return false
}

// record feeds a call outcome back into the state machine.
func (b *CircuitBreaker) record(probe bool, err error) {
	fail := countsAsFailure(err)
	ok := err == nil
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		// A probe completing after a sibling probe already reopened the
		// breaker must not disturb the fresh open state.
		if b.state != BreakerHalfOpen {
			return
		}
		b.inFlight--
		switch {
		case fail:
			b.trip()
		case ok:
			b.successes++
			if b.successes >= b.probeBudget {
				b.state = BreakerClosed
				b.failures = 0
			}
		}
		return
	}
	if b.state != BreakerClosed {
		return // stale completion from before a trip
	}
	switch {
	case fail:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case ok:
		b.failures = 0
	}
}

// trip (re)opens the breaker. Caller holds b.mu.
func (b *CircuitBreaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.inFlight, b.successes = 0, 0
}
