package provider

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Retry re-attempts calls that fail with a retryable class, sleeping a
// full-jitter backoff between attempts: U[0, min(cap, base<<attempt)).
// Full jitter (the AWS architecture-blog variant) decorrelates the
// retry storms of concurrent sessions that failed together. Once the
// attempt budget is spent the last error is wrapped in ClassExhausted,
// which is itself non-retryable — an outer retry can never multiply an
// inner one.
type Retry struct {
	clock    Clock
	attempts int
	base     time.Duration
	cap      time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetry returns a retry policy with the given total attempt budget
// (clamped to >= 1; 1 means no retries) and a seeded jitter source.
func NewRetry(clock Clock, attempts int, base, cap time.Duration, seed int64) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Retry{clock: clock, attempts: attempts, base: base, cap: cap,
		rng: rand.New(rand.NewSource(seed))}
}

// Name implements Middleware.
func (r *Retry) Name() string { return "retry" }

// Wrap implements Middleware.
func (r *Retry) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		var last error
		for attempt := 0; attempt < r.attempts; attempt++ {
			if attempt > 0 {
				if err := r.clock.Sleep(ctx, r.backoff(attempt-1)); err != nil {
					return Response{}, &Error{Class: ClassOf(err), Op: req.Op, Attempts: attempt, Err: err}
				}
			}
			resp, err := next(ctx, req)
			if err == nil {
				return resp, nil
			}
			if !Retryable(err) {
				return Response{}, err
			}
			last = err
		}
		return Response{}, &Error{Class: ClassExhausted, Op: req.Op, Attempts: r.attempts, Err: last}
	}
}

// backoff draws the full-jitter delay before attempt+2.
func (r *Retry) backoff(attempt int) time.Duration {
	ceil := r.base << uint(attempt)
	if ceil <= 0 || ceil > r.cap { // <= 0 catches shift overflow
		ceil = r.cap
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(f * float64(ceil))
}
