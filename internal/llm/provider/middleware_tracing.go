package provider

import (
	"context"
	"fmt"
)

// Tracing emits one transcript line per LLM call through the same
// func(stage, detail string) hook the pipeline already uses for agent
// traces, so provider activity interleaves with the existing
// transcript. With a nil hook the middleware vanishes: Wrap returns
// next unchanged and the call path pays nothing.
type Tracing struct {
	clock Clock
	hook  func(stage, detail string)
}

// NewTracing returns a tracing middleware feeding hook (stage "llm").
func NewTracing(clock Clock, hook func(stage, detail string)) *Tracing {
	return &Tracing{clock: clock, hook: hook}
}

// Name implements Middleware.
func (t *Tracing) Name() string { return "tracing" }

// Wrap implements Middleware.
func (t *Tracing) Wrap(next DoFunc) DoFunc {
	if t.hook == nil {
		return next
	}
	return func(ctx context.Context, req *Request) (Response, error) {
		start := t.clock.Now()
		resp, err := next(ctx, req)
		wall := t.clock.Now().Sub(start)
		if err != nil {
			t.hook("llm", fmt.Sprintf("%s failed (%s) after %s: %v",
				req.Op, ClassOf(err), wall, err))
		} else {
			t.hook("llm", fmt.Sprintf("%s ok: %d bytes, modelled %.2fs, wall %s",
				req.Op, len(resp.Code), resp.Latency, wall))
		}
		return resp, err
	}
}
