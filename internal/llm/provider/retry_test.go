package provider

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsFirstAttempt(t *testing.T) {
	c := NewAutoClock()
	r := NewRetry(c, 3, 100*time.Millisecond, time.Second, 1)
	calls := 0
	do := r.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		return Response{Latency: 2}, nil
	})
	start := c.Now()
	resp, err := do(context.Background(), &Request{})
	if err != nil || resp.Latency != 2 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
	if !c.Now().Equal(start) {
		t.Errorf("success path slept %v", c.Now().Sub(start))
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	c := NewAutoClock()
	r := NewRetry(c, 3, 100*time.Millisecond, time.Second, 42)
	calls := 0
	do := r.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		if calls < 3 {
			return Response{}, &Error{Class: ClassUnavailable, Err: errInjected}
		}
		return Response{Latency: 1}, nil
	})
	start := c.Now()
	if _, err := do(context.Background(), &Request{}); err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Two backoffs were slept: U[0,100ms) + U[0,200ms) < 300ms total.
	if slept := c.Now().Sub(start); slept < 0 || slept >= 300*time.Millisecond {
		t.Errorf("total backoff %v outside [0, 300ms)", slept)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	c := NewAutoClock()
	r := NewRetry(c, 5, 100*time.Millisecond, time.Second, 1)
	calls := 0
	do := r.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		return Response{}, &Error{Class: ClassInvalid, Err: errInjected}
	})
	_, err := do(context.Background(), &Request{})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (invalid requests must not retry)", calls)
	}
	if ClassOf(err) != ClassInvalid {
		t.Errorf("class = %v, want invalid passed through", ClassOf(err))
	}
}

func TestRetryExhaustion(t *testing.T) {
	c := NewAutoClock()
	r := NewRetry(c, 4, 50*time.Millisecond, time.Second, 7)
	calls := 0
	do := r.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		return Response{}, &Error{Class: ClassUnavailable, Err: errInjected}
	})
	_, err := do(context.Background(), &Request{Op: OpGenerateTestbench})
	if calls != 4 {
		t.Errorf("calls = %d, want full budget 4", calls)
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if pe.Class != ClassExhausted || pe.Attempts != 4 || pe.Op != OpGenerateTestbench {
		t.Errorf("error = %+v, want exhausted after 4 attempts", pe)
	}
	// The last underlying failure stays reachable for diagnostics.
	if !errors.Is(err, errInjected) {
		t.Error("exhausted error lost the underlying cause")
	}
	// Exhausted is terminal: a nested retry cannot multiply attempts.
	if Retryable(err) {
		t.Error("exhausted must not be retryable")
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	c := NewMockClock()
	r := NewRetry(c, 10, 100*time.Millisecond, 2*time.Second, 3)
	for attempt := 0; attempt < 64; attempt++ {
		ceil := 100 * time.Millisecond << uint(attempt)
		if ceil <= 0 || ceil > 2*time.Second { // shift overflow or cap
			ceil = 2 * time.Second
		}
		for draw := 0; draw < 200; draw++ {
			if d := r.backoff(attempt); d < 0 || d >= ceil {
				t.Fatalf("backoff(%d) = %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestRetryBackoffDeterministicPerSeed(t *testing.T) {
	draws := func(seed int64) []time.Duration {
		r := NewRetry(NewMockClock(), 3, 100*time.Millisecond, time.Second, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = r.backoff(i % 4)
		}
		return out
	}
	a, b := draws(5), draws(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	if c := draws(6); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	c := NewMockClock()
	r := NewRetry(c, 3, time.Second, time.Second, 1)
	do := r.Wrap(failDo(ClassUnavailable))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := do(ctx, &Request{Op: OpGenerateRTL})
		errc <- err
	}()
	c.BlockUntil(1) // retry asleep in its first backoff
	cancel()
	err := <-errc
	var pe *Error
	if !errors.As(err, &pe) || pe.Class != ClassCanceled {
		t.Fatalf("err = %v, want classified canceled", err)
	}
	if pe.Attempts != 1 {
		t.Errorf("attempts = %d, want the 1 consumed before cancellation", pe.Attempts)
	}
}

func TestRetryAttemptsClamp(t *testing.T) {
	c := NewAutoClock()
	r := NewRetry(c, 0, 0, 0, 1) // everything clamps to a sane minimum
	calls := 0
	do := r.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		return Response{}, &Error{Class: ClassUnavailable, Err: errInjected}
	})
	do(context.Background(), &Request{})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (attempts clamps to 1)", calls)
	}
}
