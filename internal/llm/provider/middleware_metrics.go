package provider

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two wall-clock latency buckets
// (bucket i covers [2^(i-1), 2^i) microseconds; bucket 0 is < 1µs).
const histBuckets = 32

// Metrics counts calls and failures per op and accumulates wall-clock
// latency histograms plus the modelled API latency. All counters are
// atomics over fixed arrays, so the hot path is lock- and
// allocation-free and safe under concurrent sweep workers.
type Metrics struct {
	clock    Clock
	calls    [numOps]atomic.Int64
	failures [numOps][numClasses]atomic.Int64
	wall     [numOps][histBuckets]atomic.Int64
	modelled [numOps]atomic.Int64 // microseconds of Response.Latency
}

// NewMetrics returns an empty metrics sink.
func NewMetrics(clock Clock) *Metrics { return &Metrics{clock: clock} }

// Name implements Middleware.
func (m *Metrics) Name() string { return "metrics" }

// Wrap implements Middleware.
func (m *Metrics) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		start := m.clock.Now()
		resp, err := next(ctx, req)
		m.observe(req.Op, err, m.clock.Now().Sub(start), resp.Latency)
		return resp, err
	}
}

func (m *Metrics) observe(op Op, err error, wall time.Duration, modelled float64) {
	if op < 0 || int(op) >= numOps {
		return
	}
	m.calls[op].Add(1)
	if err != nil {
		if c := ClassOf(err); c > 0 && int(c) < numClasses {
			m.failures[op][c].Add(1)
		}
	}
	m.wall[op][bucketOf(wall)].Add(1)
	m.modelled[op].Add(int64(modelled * 1e6))
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// OpSnapshot is the frozen view of one op's counters.
type OpSnapshot struct {
	Calls           int64
	Failures        map[string]int64 // by class name, non-zero only
	ModelledSeconds float64          // summed Response.Latency
	WallBuckets     [histBuckets]int64
}

// P99Wall estimates the 99th-percentile wall latency from the bucket
// upper bounds (0 when no samples).
func (s OpSnapshot) P99Wall() time.Duration {
	var total int64
	for _, n := range s.WallBuckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := (total*99 + 99) / 100
	var seen int64
	for i, n := range s.WallBuckets {
		seen += n
		if seen >= rank {
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<histBuckets) * time.Microsecond
}

// Snapshot freezes the counters into a reportable view keyed by op
// name.
func (m *Metrics) Snapshot() map[string]OpSnapshot {
	out := make(map[string]OpSnapshot, numOps)
	for op := 0; op < numOps; op++ {
		s := OpSnapshot{
			Calls:           m.calls[op].Load(),
			ModelledSeconds: float64(m.modelled[op].Load()) / 1e6,
			Failures:        map[string]int64{},
		}
		for c := 1; c < numClasses; c++ {
			if n := m.failures[op][c].Load(); n > 0 {
				s.Failures[Class(c).String()] = n
			}
		}
		for b := 0; b < histBuckets; b++ {
			s.WallBuckets[b] = m.wall[op][b].Load()
		}
		if s.Calls > 0 {
			out[Op(op).String()] = s
		}
	}
	return out
}

// Render formats a snapshot as a compact table for transcripts and the
// CLI -llm-metrics flag.
func (m *Metrics) Render() string {
	snap := m.Snapshot()
	if len(snap) == 0 {
		return "llm metrics: no calls"
	}
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("llm metrics (per op)\n")
	for _, n := range names {
		s := snap[n]
		fmt.Fprintf(&sb, "  %-20s calls=%-6d modelled=%.1fs p99wall=%s",
			n, s.Calls, s.ModelledSeconds, s.P99Wall())
		if len(s.Failures) > 0 {
			classes := make([]string, 0, len(s.Failures))
			for c := range s.Failures {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			sb.WriteString(" failures={")
			for i, c := range classes {
				if i > 0 {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "%s:%d", c, s.Failures[c])
			}
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
