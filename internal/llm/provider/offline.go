package provider

import (
	"context"
	"errors"

	"repro/internal/llm"
)

var errUnknownOp = errors.New("unknown op")

// Offline re-homes the calibrated deterministic llm.Model as the
// default provider. Calls are synchronous, never fail, and consume the
// session's seeded RNG in exactly the order the seed pipeline did, so
// results — and therefore experiment cache keys — are byte-for-byte
// identical with or without the middleware stack around it.
type Offline struct {
	model llm.Model
}

// NewOffline wraps a calibrated model profile.
func NewOffline(model llm.Model) *Offline { return &Offline{model: model} }

// Name implements Provider.
func (o *Offline) Name() string { return "offline" }

// ModelName implements Provider.
func (o *Offline) ModelName() string { return o.model.Name() }

// License implements Provider.
func (o *Offline) License() string { return o.model.License() }

// NewSession implements Provider.
func (o *Offline) NewSession(req llm.GenRequest) (Session, error) {
	return &offlineSession{s: o.model.NewSession(req)}, nil
}

type offlineSession struct {
	s llm.Session
}

// Snapshot implements Resumable: the calibrated model's sessions carry
// their full conversation state (RNG position, active defect sets), so
// checkpointed pipeline runs restore to the exact defect stream an
// uninterrupted run would have consumed.
func (s *offlineSession) Snapshot() ([]byte, error) {
	r, ok := s.s.(llm.ResumableSession)
	if !ok {
		return nil, &Error{Class: ClassInvalid, Provider: "offline", Err: errNotResumable}
	}
	return r.Snapshot()
}

// Restore implements Resumable.
func (s *offlineSession) Restore(data []byte) error {
	r, ok := s.s.(llm.ResumableSession)
	if !ok {
		return &Error{Class: ClassInvalid, Provider: "offline", Err: errNotResumable}
	}
	return r.Restore(data)
}

// Do implements Session by dispatching onto the simulated
// conversation. A pre-cancelled context is honoured before any RNG is
// consumed, so cancellation can never desynchronise the deterministic
// defect stream.
func (s *offlineSession) Do(ctx context.Context, req *Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	switch req.Op {
	case OpGenerateTestbench:
		code, lat := s.s.GenerateTestbench()
		return Response{Code: code, Latency: lat}, nil
	case OpGenerateRTL:
		code, lat := s.s.GenerateRTL(req.Feedback)
		return Response{Code: code, Latency: lat}, nil
	case OpRepairTestbench:
		code, lat := s.s.RepairTestbench(req.Feedback)
		return Response{Code: code, Latency: lat}, nil
	case OpAnalysis:
		return Response{Latency: s.s.AnalysisLatency(req.Kind, req.Items)}, nil
	}
	return Response{}, &Error{Class: ClassInvalid, Op: req.Op, Provider: "offline", Err: errUnknownOp}
}
