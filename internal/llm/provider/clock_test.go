package provider

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestMockClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewMockClock()
	var order []string
	var mu sync.Mutex
	note := func(s string) func() {
		return func() { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	c.AfterFunc(30*time.Millisecond, note("c"))
	c.AfterFunc(10*time.Millisecond, note("a"))
	c.AfterFunc(20*time.Millisecond, note("b"))
	c.Advance(time.Second)
	if got := order; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("fire order = %v, want [a b c]", got)
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d after full advance", c.Pending())
	}
}

func TestMockClockTiesFireInArmOrder(t *testing.T) {
	c := NewMockClock()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		c.AfterFunc(5*time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(5 * time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want arm order", order)
		}
	}
}

func TestMockClockCallbackSeesAdvancedNow(t *testing.T) {
	c := NewMockClock()
	start := c.Now()
	var at time.Time
	c.AfterFunc(7*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Second)
	if want := start.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Errorf("callback saw now=%v, want %v", at, want)
	}
	if want := start.Add(time.Second); !c.Now().Equal(want) {
		t.Errorf("now = %v, want %v", c.Now(), want)
	}
}

func TestMockClockAdvanceToNext(t *testing.T) {
	c := NewMockClock()
	start := c.Now()
	fired := 0
	c.AfterFunc(50*time.Millisecond, func() { fired++ })
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext found no timer")
	}
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	if want := start.Add(50 * time.Millisecond); !c.Now().Equal(want) {
		t.Errorf("now = %v, want %v", c.Now(), want)
	}
	if c.AdvanceToNext() {
		t.Error("AdvanceToNext reported a timer on an empty clock")
	}
}

func TestMockClockTimerStopPreventsFiring(t *testing.T) {
	c := NewMockClock()
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop on an armed timer must report true")
	}
	if tm.Stop() {
		t.Error("second Stop must report false")
	}
	c.Advance(time.Second)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestMockClockTimerReset(t *testing.T) {
	c := NewMockClock()
	fired := 0
	tm := c.AfterFunc(10*time.Millisecond, func() { fired++ })
	c.Advance(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if tm.Reset(10 * time.Millisecond) {
		t.Error("Reset of an expired timer must report false")
	}
	c.Advance(10 * time.Millisecond)
	if fired != 2 {
		t.Errorf("fired = %d after reset", fired)
	}
}

func TestMockClockSleepBlocksUntilAdvance(t *testing.T) {
	c := NewMockClock()
	done := make(chan error, 1)
	go func() { done <- c.Sleep(context.Background(), 100*time.Millisecond) }()
	c.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	c.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Errorf("Sleep = %v", err)
	}
}

func TestMockClockSleepHonoursCancellation(t *testing.T) {
	c := NewMockClock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Sleep(ctx, time.Hour) }()
	c.BlockUntil(1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("Sleep = %v, want context.Canceled", err)
	}
	if c.Pending() != 0 {
		t.Errorf("cancelled sleeper left %d pending timers", c.Pending())
	}
}

func TestAutoClockSleepAdvancesItself(t *testing.T) {
	c := NewAutoClock()
	start := c.Now()
	if err := c.Sleep(context.Background(), 250*time.Millisecond); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
	if want := start.Add(250 * time.Millisecond); !c.Now().Equal(want) {
		t.Errorf("now = %v, want %v", c.Now(), want)
	}
}

func TestAutoClockSleepFiresTimersOnTheWay(t *testing.T) {
	c := NewAutoClock()
	fired := false
	c.AfterFunc(10*time.Millisecond, func() { fired = true })
	c.Sleep(context.Background(), 20*time.Millisecond)
	if !fired {
		t.Error("timer due mid-sleep did not fire")
	}
}

func TestMockClockPreCancelledSleep(t *testing.T) {
	c := NewMockClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); err != context.Canceled {
		t.Errorf("Sleep = %v, want context.Canceled", err)
	}
}

func TestRealClockSleepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RealClock().Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("Sleep = %v, want context.Canceled", err)
	}
	if err := RealClock().Sleep(context.Background(), 0); err != nil {
		t.Errorf("zero Sleep = %v", err)
	}
}
