package provider

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// okDo is the innermost no-op call for middleware-in-isolation tests.
func okDo(ctx context.Context, req *Request) (Response, error) {
	return Response{Latency: 1}, nil
}

func TestRateLimiterBurstThenWait(t *testing.T) {
	c := NewAutoClock()
	l := NewRateLimiter(c, 2, 3) // 2 tokens/s, burst 3
	do := l.Wrap(okDo)
	req := &Request{Op: OpAnalysis}
	start := c.Now()

	// The burst is admitted without any time passing.
	for i := 0; i < 3; i++ {
		if _, err := do(context.Background(), req); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
	if !c.Now().Equal(start) {
		t.Fatalf("burst consumed time: %v", c.Now().Sub(start))
	}

	// The 4th call must wait exactly one token's refill: 1/rate = 500ms.
	if _, err := do(context.Background(), req); err != nil {
		t.Fatalf("post-burst call: %v", err)
	}
	if got, want := c.Now().Sub(start), 500*time.Millisecond; got != want {
		t.Errorf("waited %v, want %v", got, want)
	}
}

func TestRateLimiterRefillMath(t *testing.T) {
	c := NewMockClock()
	l := NewRateLimiter(c, 4, 8)
	ctx := context.Background()
	req := &Request{Op: OpAnalysis}
	do := l.Wrap(okDo)
	for i := 0; i < 8; i++ {
		if _, err := do(ctx, req); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if got := l.Tokens(); got != 0 {
		t.Fatalf("tokens after drain = %v", got)
	}
	c.Advance(time.Second) // 4 tokens/s for 1s
	if got := l.Tokens(); math.Abs(got-4) > 1e-9 {
		t.Errorf("tokens after 1s = %v, want 4", got)
	}
	c.Advance(time.Hour) // refill saturates at burst
	if got := l.Tokens(); got != 8 {
		t.Errorf("tokens after 1h = %v, want burst 8", got)
	}
}

func TestRateLimiterFailFast(t *testing.T) {
	c := NewMockClock()
	l := NewRateLimiter(c, 1, 1).FailFast()
	do := l.Wrap(okDo)
	req := &Request{Op: OpGenerateRTL}
	if _, err := do(context.Background(), req); err != nil {
		t.Fatalf("first call: %v", err)
	}
	start := c.Now()
	_, err := do(context.Background(), req)
	if ClassOf(err) != ClassRateLimited {
		t.Errorf("class = %v, want rate-limited", ClassOf(err))
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Op != OpGenerateRTL {
		t.Errorf("error = %v, want classified with op", err)
	}
	if !c.Now().Equal(start) {
		t.Error("fail-fast rejection consumed time")
	}
	if Retryable(err) != true {
		t.Error("rate-limited must be retryable so an outer retry can wait it out")
	}
}

func TestRateLimiterWaitCancelled(t *testing.T) {
	c := NewMockClock()
	l := NewRateLimiter(c, 1, 1)
	do := l.Wrap(okDo)
	if _, err := do(context.Background(), &Request{}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := do(ctx, &Request{Op: OpAnalysis})
		errc <- err
	}()
	c.BlockUntil(1) // waiter asleep on the refill
	cancel()
	if err := <-errc; ClassOf(err) != ClassCanceled {
		t.Errorf("class = %v, want canceled", ClassOf(err))
	}
}

func TestRateLimiterMinimumBurst(t *testing.T) {
	c := NewAutoClock()
	l := NewRateLimiter(c, 10, 0) // burst clamps to 1
	if got := l.Tokens(); got != 1 {
		t.Errorf("tokens = %v, want clamped burst 1", got)
	}
}
