package provider

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/edatool"
	"repro/internal/llm"
)

func genReq(t *testing.T) llm.GenRequest {
	t.Helper()
	prob := bench.NewSuite().ByID("gate_and")
	if prob == nil {
		t.Fatal("fixture problem missing")
	}
	return llm.GenRequest{Problem: prob, Language: edatool.Verilog}
}

// namedMW records traversal order to prove Chain composes outermost
// first.
type namedMW struct {
	id    string
	trail *[]string
}

func (m namedMW) Name() string { return m.id }
func (m namedMW) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		*m.trail = append(*m.trail, m.id)
		return next(ctx, req)
	}
}

func TestChainOrdering(t *testing.T) {
	model := llm.ProfileByName("gpt-4o")
	var trail []string
	p := Chain(NewOffline(model),
		namedMW{"outer", &trail}, namedMW{"mid", &trail}, namedMW{"inner", &trail})
	if p.Name() != "offline" || p.ModelName() != "gpt-4o" {
		t.Errorf("chained identity = %s/%s", p.Name(), p.ModelName())
	}
	s, err := p.NewSession(genReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), &Request{Op: OpAnalysis, Kind: llm.SyntaxFeedback}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(trail, ","); got != "outer,mid,inner" {
		t.Errorf("traversal = %s, want outer,mid,inner", got)
	}
}

func TestChainEmptyIsIdentity(t *testing.T) {
	p := NewOffline(llm.ProfileByName("gpt-4o"))
	if Chain(p) != Provider(p) {
		t.Error("empty chain must return the provider unchanged")
	}
}

// runSession replays a fixed op sequence and returns the responses.
func runSession(t *testing.T, p Provider) []Response {
	t.Helper()
	s, err := p.NewSession(genReq(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := []Request{
		{Op: OpGenerateTestbench},
		{Op: OpGenerateRTL},
		{Op: OpAnalysis, Kind: llm.SyntaxFeedback, Items: 2},
		{Op: OpGenerateRTL, Feedback: &llm.Feedback{Kind: llm.SyntaxFeedback, Items: []llm.FeedbackItem{{Line: 1, Message: "x"}}}},
	}
	var out []Response
	for i := range reqs {
		resp, err := s.Do(ctx, &reqs[i])
		if err != nil {
			t.Fatalf("op %v: %v", reqs[i].Op, err)
		}
		out = append(out, resp)
	}
	return out
}

// TestStackPreservesOfflineDeterminism is the heart of the tentpole's
// compatibility claim: the full default middleware stack around the
// offline provider is byte-for-byte transparent.
func TestStackPreservesOfflineDeterminism(t *testing.T) {
	model := llm.ProfileByName("llama3-70b")
	bare := runSession(t, NewOffline(model))
	stacked := runSession(t, NewStack(NewOffline(model), DefaultStackConfig()))
	if len(bare) != len(stacked) {
		t.Fatalf("response counts differ: %d vs %d", len(bare), len(stacked))
	}
	for i := range bare {
		if bare[i] != stacked[i] {
			t.Errorf("op %d diverged:\nbare:    %+v\nstacked: %+v", i, bare[i], stacked[i])
		}
	}
}

func TestOfflineUnknownOp(t *testing.T) {
	p := NewOffline(llm.ProfileByName("gpt-4o"))
	s, _ := p.NewSession(genReq(t))
	_, err := s.Do(context.Background(), &Request{Op: Op(99)})
	if ClassOf(err) != ClassInvalid {
		t.Errorf("class = %v, want invalid", ClassOf(err))
	}
}

func TestOfflinePreCancelledContext(t *testing.T) {
	p := NewOffline(llm.ProfileByName("gpt-4o"))
	s, _ := p.NewSession(genReq(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, &Request{Op: OpGenerateTestbench}); ClassOf(err) != ClassCanceled {
		t.Errorf("class = %v, want canceled before any RNG is consumed", ClassOf(err))
	}
}

func TestFlakyDeterministicPerSeed(t *testing.T) {
	model := llm.ProfileByName("gpt-4o")
	replay := func(seed int64) []Class {
		f := NewFlaky(NewOffline(model), NewAutoClock(),
			FlakyConfig{Seed: seed, ErrorRate: 0.5})
		s, err := f.NewSession(genReq(t))
		if err != nil {
			t.Fatal(err)
		}
		var classes []Class
		for i := 0; i < 32; i++ {
			_, err := s.Do(context.Background(), &Request{Op: OpAnalysis, Kind: llm.SyntaxFeedback})
			classes = append(classes, ClassOf(err))
		}
		return classes
	}
	a, b := replay(7), replay(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	sawError := false
	for _, cl := range a {
		if cl != ClassOK {
			sawError = true
			if cl != ClassUnavailable && cl != ClassRateLimited {
				t.Errorf("default fault class = %v, want unavailable or rate-limited", cl)
			}
		}
	}
	if !sawError {
		t.Error("error rate 0.5 over 32 calls injected nothing")
	}
}

func TestFlakyZeroRateIsTransparent(t *testing.T) {
	model := llm.ProfileByName("llama3-70b")
	bare := runSession(t, NewOffline(model))
	flaky := runSession(t, NewFlaky(NewOffline(model), NewAutoClock(), FlakyConfig{Seed: 3, ErrorRate: 0}))
	for i := range bare {
		if bare[i] != flaky[i] {
			t.Errorf("op %d diverged under 0-rate flaky", i)
		}
	}
}

func TestFlakyLatencyHonoursTimeout(t *testing.T) {
	clock := NewAutoClock()
	model := llm.ProfileByName("gpt-4o")
	cfg := DefaultStackConfig()
	cfg.Clock = clock
	cfg.Attempts = 1 // isolate the timeout path
	p := NewStack(NewFlaky(NewOffline(model), clock,
		FlakyConfig{Seed: 1, ErrorRate: 0, MeanLatency: 10 * cfg.Timeout}), cfg)
	s, err := p.NewSession(genReq(t))
	if err != nil {
		t.Fatal(err)
	}
	// With mean latency 10x the budget most draws exceed the deadline;
	// find one that does and assert it classifies as timeout.
	sawTimeout := false
	for i := 0; i < 8 && !sawTimeout; i++ {
		_, err := s.Do(context.Background(), &Request{Op: OpAnalysis, Kind: llm.SyntaxFeedback})
		switch ClassOf(err) {
		case ClassTimeout:
			sawTimeout = true
		case ClassOK:
		default:
			t.Fatalf("unexpected class %v (%v)", ClassOf(err), err)
		}
	}
	if !sawTimeout {
		t.Error("no injected stall classified as timeout")
	}
}

func TestRegistryBuildsBuiltins(t *testing.T) {
	model := llm.ProfileByName("gpt-4o")
	names := DefaultRegistry.Names()
	if len(names) != 2 || names[0] != "flaky" || names[1] != "offline" {
		t.Fatalf("builtin names = %v", names)
	}
	for _, name := range names {
		p, err := DefaultRegistry.New(name, model, BuildConfig{Stack: DefaultStackConfig()})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p.ModelName() != "gpt-4o" {
			t.Errorf("%s model = %s", name, p.ModelName())
		}
	}
	if _, err := DefaultRegistry.New("gpt-live", model, BuildConfig{}); err == nil {
		t.Error("unknown provider must error")
	} else if !strings.Contains(err.Error(), "offline") {
		t.Errorf("unknown-provider error should list known names: %v", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	f := func(model llm.Model, cfg BuildConfig) (Provider, error) { return nil, nil }
	if err := r.Register("x", f); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", f); err == nil {
		t.Error("duplicate registration must error")
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpGenerateTestbench: "generate-testbench",
		OpGenerateRTL:       "generate-rtl",
		OpRepairTestbench:   "repair-testbench",
		OpAnalysis:          "analysis",
	}
	if len(want) != numOps {
		t.Fatalf("op set drifted")
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() != "invalid-op" {
		t.Error("out-of-range op must stringify safely")
	}
}

// TestStackSteadyStateAllocs is the allocation guard the CI alloc step
// runs: a steady-state analysis call through the full default stack —
// retry, breaker, timeout, metrics — must not allocate. The first call
// warms the timeout context pool.
func TestStackSteadyStateAllocs(t *testing.T) {
	model := llm.ProfileByName("gpt-4o")
	cfg := DefaultStackConfig()
	cfg.Metrics = NewMetrics(RealClock())
	p := NewStack(NewOffline(model), cfg)
	s, err := p.NewSession(genReq(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := &Request{Op: OpAnalysis, Kind: llm.SyntaxFeedback, Items: 3}
	if _, err := s.Do(ctx, req); err != nil { // warm the pool
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := s.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("middleware chain allocates %.2f per steady-state call, want 0", n)
	}
}
