package provider

import (
	"context"
	"testing"
	"time"
)

func TestTimeoutExpiresSlowCall(t *testing.T) {
	c := NewAutoClock()
	tm := NewTimeout(c, 50*time.Millisecond)
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		// A provider stuck for 10x the budget; the deadline context cuts
		// the sleep short.
		if err := c.Sleep(ctx, 500*time.Millisecond); err != nil {
			return Response{}, err
		}
		return Response{Latency: 1}, nil
	})
	start := c.Now()
	_, err := do(context.Background(), &Request{Op: OpGenerateRTL})
	if ClassOf(err) != ClassTimeout {
		t.Fatalf("class = %v (%v), want timeout", ClassOf(err), err)
	}
	// The call was cut at the deadline, not after the full provider stall.
	if got, want := c.Now().Sub(start), 50*time.Millisecond; got != want {
		t.Errorf("elapsed %v, want %v", got, want)
	}
	if !Retryable(err) {
		t.Error("timeout must be retryable: the next attempt gets a fresh deadline")
	}
}

func TestTimeoutFastCallUnaffected(t *testing.T) {
	c := NewAutoClock()
	tm := NewTimeout(c, 50*time.Millisecond)
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		c.Sleep(ctx, 10*time.Millisecond)
		return Response{Latency: 1}, nil
	})
	// Several sequential calls also exercise context pooling/reset.
	for i := 0; i < 5; i++ {
		resp, err := do(context.Background(), &Request{})
		if err != nil || resp.Latency != 1 {
			t.Fatalf("call %d: resp=%+v err=%v", i, resp, err)
		}
	}
	if c.Pending() != 0 {
		t.Errorf("leaked %d armed timers", c.Pending())
	}
}

func TestTimeoutFreshDeadlinePerCall(t *testing.T) {
	c := NewAutoClock()
	tm := NewTimeout(c, 50*time.Millisecond)
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		c.Sleep(ctx, 40*time.Millisecond)
		return Response{}, ctx.Err()
	})
	// Each 40ms call fits its own 50ms budget; budgets must not bleed
	// across calls through the pooled context.
	for i := 0; i < 4; i++ {
		if _, err := do(context.Background(), &Request{}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTimeoutParentCancellationWins(t *testing.T) {
	c := NewMockClock()
	tm := NewTimeout(c, time.Hour)
	entered := make(chan struct{})
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		close(entered)
		<-ctx.Done() // a provider blocked on the context directly
		return Response{}, ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := do(ctx, &Request{})
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; ClassOf(err) != ClassCanceled {
		t.Errorf("class = %v, want canceled (parent cancellation, not timeout)", ClassOf(err))
	}
}

func TestTimeoutCtxContract(t *testing.T) {
	c := NewMockClock()
	tm := NewTimeout(c, time.Minute)
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "v")
	var inner context.Context
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		inner = ctx
		if d, ok := ctx.Deadline(); !ok || !d.Equal(c.Now().Add(time.Minute)) {
			t.Errorf("Deadline() = %v, %v", d, ok)
		}
		if ctx.Value(key{}) != "v" {
			t.Error("Value not delegated to parent")
		}
		if ctx.Err() != nil {
			t.Errorf("Err() = %v before deadline", ctx.Err())
		}
		return Response{}, nil
	})
	if _, err := do(parent, &Request{}); err != nil {
		t.Fatalf("do: %v", err)
	}
	_ = inner

	// A parent deadline earlier than the timeout's own wins. The mock
	// epoch is far in the past, so a huge mock-relative budget puts the
	// timeout's deadline safely after the parent's wall-clock one.
	pctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	tm2 := NewTimeout(c, 200*365*24*time.Hour)
	do2 := tm2.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		pd, _ := pctx.Deadline()
		if d, ok := ctx.Deadline(); !ok || !d.Equal(pd) {
			t.Errorf("Deadline() = %v, want parent's %v", d, pd)
		}
		return Response{}, nil
	})
	do2(pctx, &Request{})
}

func TestTimeoutDoneChannelCloses(t *testing.T) {
	c := NewMockClock()
	tm := NewTimeout(c, 10*time.Millisecond)
	done := make(chan error, 1)
	do := tm.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		<-ctx.Done() // demand the channel before the deadline
		return Response{}, ctx.Err()
	})
	go func() {
		_, err := do(context.Background(), &Request{})
		done <- err
	}()
	c.BlockUntil(1) // the armed deadline timer
	c.Advance(10 * time.Millisecond)
	if err := <-done; ClassOf(err) != ClassTimeout {
		t.Errorf("class = %v, want timeout", ClassOf(err))
	}
}
