package provider

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/llm"
)

var errInjected = errors.New("injected fault")

// FlakyConfig parameterises fault injection.
type FlakyConfig struct {
	// Seed drives the fault RNG; the same seed and call order replay
	// the same faults.
	Seed int64
	// ErrorRate is the per-call probability of an injected failure.
	ErrorRate float64
	// Classes are the failure classes sampled uniformly per injected
	// error. Nil defaults to {ClassUnavailable, ClassRateLimited}.
	Classes []Class
	// MeanLatency, when > 0, injects an exponentially distributed
	// wall-clock delay (through the injected clock) before each call —
	// the knob that exercises the timeout middleware.
	MeanLatency time.Duration
}

// DefaultFlakyConfig returns the fault profile the CLIs use when the
// flaky provider is selected without explicit knobs.
func DefaultFlakyConfig() FlakyConfig {
	return FlakyConfig{Seed: 1, ErrorRate: 0.25}
}

// Flaky wraps another provider with seeded, configurable fault
// injection: classified errors at ErrorRate and optional latency drawn
// from an exponential distribution. It exists to prove the middleware
// stack and the pipeline degrade gracefully; it is deterministic for a
// fixed seed and call order.
type Flaky struct {
	inner Provider
	clock Clock
	cfg   FlakyConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFlaky wraps inner with the given fault profile.
func NewFlaky(inner Provider, clock Clock, cfg FlakyConfig) *Flaky {
	if cfg.Classes == nil {
		cfg.Classes = []Class{ClassUnavailable, ClassRateLimited}
	}
	return &Flaky{inner: inner, clock: clock, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Provider.
func (f *Flaky) Name() string { return "flaky" }

// ModelName implements Provider.
func (f *Flaky) ModelName() string { return f.inner.ModelName() }

// License implements Provider.
func (f *Flaky) License() string { return f.inner.License() }

// NewSession implements Provider. All sessions share the provider's
// fault RNG, like real outages that hit every conversation at once.
func (f *Flaky) NewSession(req llm.GenRequest) (Session, error) {
	s, err := f.inner.NewSession(req)
	if err != nil {
		return nil, err
	}
	return &flakySession{f: f, inner: s}, nil
}

// roll draws (latency, fault class) for one call in a fixed RNG order.
func (f *Flaky) roll() (time.Duration, Class, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var lat time.Duration
	if f.cfg.MeanLatency > 0 {
		lat = time.Duration(f.rng.ExpFloat64() * float64(f.cfg.MeanLatency))
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		return lat, f.cfg.Classes[f.rng.Intn(len(f.cfg.Classes))], true
	}
	return lat, ClassOK, false
}

type flakySession struct {
	f     *Flaky
	inner Session
}

// Snapshot implements Resumable by delegating to the wrapped session:
// the fault RNG is infrastructure noise, not conversation state, so a
// resumed run may see a different fault pattern but — through the
// retry stack — the same model outputs.
func (s *flakySession) Snapshot() ([]byte, error) { return SnapshotSession(s.inner) }

// Restore implements Resumable.
func (s *flakySession) Restore(data []byte) error { return RestoreSession(s.inner, data) }

// Do implements Session: sleep the injected latency (honouring ctx, so
// the timeout middleware can cut it short), then either fail with the
// injected class or delegate to the wrapped provider.
func (s *flakySession) Do(ctx context.Context, req *Request) (Response, error) {
	lat, class, fail := s.f.roll()
	if lat > 0 {
		if err := s.f.clock.Sleep(ctx, lat); err != nil {
			return Response{}, &Error{Class: ClassOf(err), Op: req.Op, Provider: "flaky", Err: err}
		}
	}
	if fail {
		return Response{}, &Error{Class: class, Op: req.Op, Provider: "flaky", Err: errInjected}
	}
	return s.inner.Do(ctx, req)
}
