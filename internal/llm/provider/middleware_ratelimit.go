package provider

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

var errTooManyRequests = errors.New("token bucket empty")

// RateLimiter is a token-bucket admission gate shared by every session
// of the provider it wraps: capacity Burst tokens, refilled at Rate
// tokens per second, one token per call. By default a call with no
// token waits (through the injected clock, so tests never sleep); in
// fail-fast mode it is rejected immediately with ClassRateLimited.
type RateLimiter struct {
	clock    Clock
	failFast bool

	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter admitting rps calls per second with
// the given burst capacity (minimum 1).
func NewRateLimiter(clock Clock, rps float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		clock: clock, rate: rps,
		burst: float64(burst), tokens: float64(burst),
		last: clock.Now(),
	}
}

// FailFast switches the limiter from waiting to rejecting; it returns
// the limiter for chaining and must be called before use.
func (l *RateLimiter) FailFast() *RateLimiter {
	l.failFast = true
	return l
}

// Name implements Middleware.
func (l *RateLimiter) Name() string { return "ratelimit" }

// Tokens returns the current token count after refill (for tests and
// metrics).
func (l *RateLimiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill(l.clock.Now())
	return l.tokens
}

// Wrap implements Middleware.
func (l *RateLimiter) Wrap(next DoFunc) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		if err := l.acquire(ctx, req.Op); err != nil {
			return Response{}, err
		}
		return next(ctx, req)
	}
}

// acquire takes one token, waiting for refill when the bucket is empty
// (unless fail-fast). The wait is re-checked in a loop because another
// waiter may have won the refilled token.
func (l *RateLimiter) acquire(ctx context.Context, op Op) error {
	for {
		l.mu.Lock()
		l.refill(l.clock.Now())
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		// Ceil to whole nanoseconds so a rounded-down wait cannot spin.
		need := time.Duration(math.Ceil((1 - l.tokens) / l.rate * 1e9))
		l.mu.Unlock()
		if l.failFast {
			return &Error{Class: ClassRateLimited, Op: op, Err: errTooManyRequests}
		}
		if err := l.clock.Sleep(ctx, need); err != nil {
			return &Error{Class: ClassOf(err), Op: op, Err: err}
		}
	}
}

// refill credits tokens for the time elapsed since the last update.
// Caller holds l.mu.
func (l *RateLimiter) refill(now time.Time) {
	dt := now.Sub(l.last).Seconds()
	if dt <= 0 {
		return
	}
	l.tokens = math.Min(l.burst, l.tokens+dt*l.rate)
	l.last = now
}
