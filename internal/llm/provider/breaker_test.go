package provider

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// failDo returns a DoFunc failing with the given class.
func failDo(class Class) DoFunc {
	return func(ctx context.Context, req *Request) (Response, error) {
		return Response{}, &Error{Class: class, Op: req.Op, Err: errInjected}
	}
}

func TestBreakerOpensAfterThresholdFailures(t *testing.T) {
	c := NewMockClock()
	b := NewCircuitBreaker(c, 3, 10*time.Second, 1)
	calls := 0
	do := b.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		calls++
		return Response{}, &Error{Class: ClassUnavailable, Err: errInjected}
	})
	req := &Request{Op: OpGenerateRTL}
	for i := 0; i < 3; i++ {
		do(context.Background(), req)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", got)
	}
	// Open: rejected locally, the provider is not called.
	_, err := do(context.Background(), req)
	if ClassOf(err) != ClassCircuitOpen {
		t.Errorf("class = %v, want circuit-open", ClassOf(err))
	}
	if calls != 3 {
		t.Errorf("provider called %d times, want 3 (open breaker sheds load)", calls)
	}
	if Retryable(err) {
		t.Error("circuit-open must not be retryable: the cooldown, not backoff, gates recovery")
	}
}

func TestBreakerIgnoresNonInfrastructureFailures(t *testing.T) {
	c := NewMockClock()
	b := NewCircuitBreaker(c, 2, time.Second, 1)
	for _, class := range []Class{ClassInvalid, ClassRateLimited, ClassCanceled} {
		do := b.Wrap(failDo(class))
		for i := 0; i < 10; i++ {
			do(context.Background(), &Request{})
		}
		if got := b.State(); got != BreakerClosed {
			t.Errorf("state = %v after %v failures, want closed", got, class)
		}
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	c := NewMockClock()
	b := NewCircuitBreaker(c, 3, time.Second, 1)
	fail := b.Wrap(failDo(ClassUnavailable))
	ok := b.Wrap(okDo)
	for round := 0; round < 5; round++ {
		fail(context.Background(), &Request{})
		fail(context.Background(), &Request{})
		ok(context.Background(), &Request{}) // breaks the streak
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state = %v, want closed (failures never consecutive)", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	c := NewMockClock()
	b := NewCircuitBreaker(c, 1, 10*time.Second, 2)
	fail := b.Wrap(failDo(ClassTimeout))
	ok := b.Wrap(okDo)

	fail(context.Background(), &Request{})
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Cooldown not elapsed: still rejecting.
	c.Advance(9 * time.Second)
	if _, err := ok(context.Background(), &Request{}); ClassOf(err) != ClassCircuitOpen {
		t.Fatalf("rejected with %v during cooldown, want circuit-open", ClassOf(err))
	}
	c.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", got)
	}
	// Two sequential probe successes close the breaker.
	if _, err := ok(context.Background(), &Request{}); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if _, err := ok(context.Background(), &Request{}); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state = %v after probe successes, want closed", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	c := NewMockClock()
	b := NewCircuitBreaker(c, 1, 10*time.Second, 2)
	fail := b.Wrap(failDo(ClassUnavailable))

	fail(context.Background(), &Request{})
	c.Advance(10 * time.Second)
	fail(context.Background(), &Request{}) // failed probe
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", got)
	}
	// The cooldown restarted at the reopen, not the original trip.
	c.Advance(9 * time.Second)
	if got := b.State(); got != BreakerOpen {
		t.Errorf("state = %v 9s after reopen, want still open", got)
	}
	c.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Errorf("state = %v 10s after reopen, want half-open", got)
	}
}

// TestBreakerHalfOpenProbeBudgetRace drives many concurrent calls into
// a half-open breaker and asserts the probe budget bounds concurrency:
// at most Probes calls reach the provider, everyone else is rejected
// with ClassCircuitOpen. Run under -race this also proves the state
// machine's locking.
func TestBreakerHalfOpenProbeBudgetRace(t *testing.T) {
	const probes, callers = 2, 16
	c := NewMockClock()
	b := NewCircuitBreaker(c, 1, time.Second, probes)
	b.Wrap(failDo(ClassUnavailable))(context.Background(), &Request{})
	c.Advance(time.Second) // cooldown elapsed: next admit goes half-open

	var inFlight, maxInFlight, rejected atomic.Int64
	rejectedCh := make(chan struct{}, callers)
	gate := make(chan struct{})
	do := b.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		<-gate // hold the probe slot until every caller has been admitted or rejected
		inFlight.Add(-1)
		return Response{}, nil
	})

	var started, finished sync.WaitGroup
	for i := 0; i < callers; i++ {
		started.Add(1)
		finished.Add(1)
		go func() {
			started.Done()
			defer finished.Done()
			if _, err := do(context.Background(), &Request{}); err != nil {
				if ClassOf(err) != ClassCircuitOpen {
					t.Errorf("rejection class = %v", ClassOf(err))
				}
				rejected.Add(1)
				rejectedCh <- struct{}{}
			}
		}()
	}
	started.Wait()
	// Wait until all non-probe callers have been rejected; the probes
	// are parked on the gate. No wall-clock waiting: this is a pure
	// rendezvous.
	for i := 0; i < callers-probes; i++ {
		<-rejectedCh
	}
	close(gate)
	finished.Wait()

	if got := maxInFlight.Load(); got > probes {
		t.Errorf("max concurrent probes = %d, want <= %d", got, probes)
	}
	if got := rejected.Load(); got != callers-probes {
		t.Errorf("rejected = %d, want %d", got, callers-probes)
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state = %v after successful probes, want closed", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
