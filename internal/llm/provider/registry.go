package provider

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/llm"
)

// BuildConfig carries everything a registry factory may need: the
// middleware stack knobs and, for fault-injecting providers, the fault
// profile.
type BuildConfig struct {
	Stack StackConfig
	Flaky FlakyConfig
}

// Factory builds a provider (already wrapped in its middleware stack)
// for one model profile.
type Factory func(model llm.Model, cfg BuildConfig) (Provider, error)

// Registry maps provider names to factories, so CLIs and the
// experiment harness select providers by name (-provider flag) and
// new backends plug in without touching the callers.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds a named factory; duplicate names are an error.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("provider %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// New builds the named provider for the given model.
func (r *Registry) New(name string, model llm.Model, cfg BuildConfig) (Provider, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown provider %q (have: %s)", name, strings.Join(r.Names(), ", "))
	}
	return f(model, cfg)
}

// Names lists the registered providers, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultRegistry holds the built-in providers: "offline" (the
// calibrated deterministic model) and "flaky" (seeded fault injection
// over offline). Both come wrapped in the configured middleware stack.
var DefaultRegistry = func() *Registry {
	r := NewRegistry()
	r.Register("offline", func(model llm.Model, cfg BuildConfig) (Provider, error) {
		return NewStack(NewOffline(model), cfg.Stack), nil
	})
	r.Register("flaky", func(model llm.Model, cfg BuildConfig) (Provider, error) {
		clock := cfg.Stack.Clock
		if clock == nil {
			clock = RealClock()
		}
		return NewStack(NewFlaky(NewOffline(model), clock, cfg.Flaky), cfg.Stack), nil
	})
	return r
}()
