package provider

import (
	"context"
	"errors"
	"fmt"
)

// Class partitions provider failures by how callers should react.
// The classification is the retry contract: middleware never inspects
// concrete error values, only classes.
type Class int

// Error classes.
const (
	// ClassOK is the class of a nil error.
	ClassOK Class = iota
	// ClassRateLimited is a provider-side throttle (HTTP 429 shape).
	// Retryable: the condition clears once the window refills.
	ClassRateLimited
	// ClassUnavailable is a transient provider failure (5xx shape,
	// dropped connection). Retryable.
	ClassUnavailable
	// ClassTimeout is a per-attempt deadline expiry. Retryable: the
	// next attempt gets a fresh deadline.
	ClassTimeout
	// ClassCanceled is caller-initiated cancellation. Not retryable:
	// the caller no longer wants the result.
	ClassCanceled
	// ClassInvalid is a malformed or unsupported request. Not
	// retryable: the same request will fail the same way.
	ClassInvalid
	// ClassCircuitOpen is a local refusal by the circuit breaker. Not
	// retryable within the call: the breaker's cooldown, not a backoff
	// loop, decides when traffic may flow again.
	ClassCircuitOpen
	// ClassExhausted wraps the last attempt's error once the retry
	// budget is spent. Not retryable: the budget IS the retry policy.
	ClassExhausted

	numClasses = 8
)

func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassRateLimited:
		return "rate-limited"
	case ClassUnavailable:
		return "unavailable"
	case ClassTimeout:
		return "timeout"
	case ClassCanceled:
		return "canceled"
	case ClassInvalid:
		return "invalid"
	case ClassCircuitOpen:
		return "circuit-open"
	case ClassExhausted:
		return "exhausted"
	}
	return "unknown"
}

// Retryable reports whether a fresh attempt at the same request can
// reasonably succeed.
func (c Class) Retryable() bool {
	switch c {
	case ClassRateLimited, ClassUnavailable, ClassTimeout:
		return true
	}
	return false
}

// Error is the classified provider error every middleware and the
// pipeline consume.
type Error struct {
	Class    Class
	Op       Op
	Provider string // provider name, when known
	Attempts int    // attempts consumed, when a retry wrapper reports
	Err      error  // underlying cause, may be nil
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("llm %s: %s", e.Op, e.Class)
	if e.Provider != "" {
		msg = fmt.Sprintf("llm %s [%s]: %s", e.Op, e.Provider, e.Class)
	}
	if e.Attempts > 0 {
		msg += fmt.Sprintf(" after %d attempt(s)", e.Attempts)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// ClassOf extracts the class of an arbitrary error: nil is ClassOK,
// context errors map to ClassTimeout/ClassCanceled, a wrapped *Error
// keeps its class, and anything unrecognised is ClassInvalid — an
// unknown failure must not feed a retry loop.
func ClassOf(err error) Class {
	if err == nil {
		return ClassOK
	}
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Class
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	return ClassInvalid
}

// Retryable reports whether err's class permits another attempt.
func Retryable(err error) bool { return ClassOf(err).Retryable() }

// ResumableAfter reports whether a pipeline run that aborted on err is
// worth resuming later from its checkpoint. It is the per-state
// retry-vs-abort decision the job service applies: transient classes
// (rate-limited, unavailable, timeout) resume; an open circuit resumes
// (the breaker only opens on repeated infrastructure failures, which
// clear); an exhausted retry budget resumes when the attempts it spent
// were on a transient cause (the outage may be over by the time the
// job is re-queued); cancellation and invalid requests do not — the
// same request would fail the same way.
func ResumableAfter(err error) bool {
	class := ClassOf(err)
	if class.Retryable() || class == ClassCircuitOpen {
		return true
	}
	if class != ClassExhausted {
		return false
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Err == nil {
		return true // exhausted with unknown cause: assume transient
	}
	cause := ClassOf(pe.Err)
	return cause.Retryable() || cause == ClassExhausted || cause == ClassCircuitOpen
}
