package provider

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestMetricsCountsCallsAndFailures(t *testing.T) {
	c := NewMockClock()
	m := NewMetrics(c)
	ok := m.Wrap(func(ctx context.Context, req *Request) (Response, error) {
		c.Advance(3 * time.Millisecond)
		return Response{Latency: 1.5}, nil
	})
	fail := m.Wrap(failDo(ClassUnavailable))

	for i := 0; i < 4; i++ {
		ok(context.Background(), &Request{Op: OpGenerateRTL})
	}
	fail(context.Background(), &Request{Op: OpGenerateRTL})
	fail(context.Background(), &Request{Op: OpAnalysis})

	snap := m.Snapshot()
	rtl := snap[OpGenerateRTL.String()]
	if rtl.Calls != 5 {
		t.Errorf("generate-rtl calls = %d, want 5", rtl.Calls)
	}
	if got := rtl.Failures[ClassUnavailable.String()]; got != 1 {
		t.Errorf("generate-rtl unavailable failures = %d, want 1", got)
	}
	if rtl.ModelledSeconds != 6 { // 4 successes x 1.5s
		t.Errorf("modelled = %v, want 6", rtl.ModelledSeconds)
	}
	if p99 := rtl.P99Wall(); p99 < 3*time.Millisecond || p99 > 8*time.Millisecond {
		t.Errorf("p99 wall = %v, want a power-of-two bound covering 3ms", p99)
	}
	if snap[OpAnalysis.String()].Calls != 1 {
		t.Errorf("analysis calls = %d", snap[OpAnalysis.String()].Calls)
	}
	// Untouched ops are absent from the snapshot.
	if _, present := snap[OpRepairTestbench.String()]; present {
		t.Error("snapshot contains an op that was never called")
	}
}

func TestMetricsRender(t *testing.T) {
	c := NewMockClock()
	m := NewMetrics(c)
	if got := m.Render(); got != "llm metrics: no calls" {
		t.Errorf("empty render = %q", got)
	}
	m.Wrap(okDo)(context.Background(), &Request{Op: OpGenerateTestbench})
	m.Wrap(failDo(ClassTimeout))(context.Background(), &Request{Op: OpGenerateTestbench})
	out := m.Render()
	for _, want := range []string{"generate-testbench", "calls=2", "timeout:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestTracingEmitsPerCallLines(t *testing.T) {
	c := NewMockClock()
	var lines []string
	tr := NewTracing(c, func(stage, detail string) {
		lines = append(lines, stage+": "+detail)
	})
	do := tr.Wrap(okDo)
	do(context.Background(), &Request{Op: OpGenerateRTL})
	tr.Wrap(failDo(ClassUnavailable))(context.Background(), &Request{Op: OpAnalysis})

	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "generate-rtl ok") {
		t.Errorf("success line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "analysis failed (unavailable)") {
		t.Errorf("failure line = %q", lines[1])
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "llm: ") {
			t.Errorf("stage of %q is not llm", l)
		}
	}
}

func TestTracingNilHookIsFree(t *testing.T) {
	tr := NewTracing(NewMockClock(), nil)
	called := false
	next := func(ctx context.Context, req *Request) (Response, error) {
		called = true
		return Response{}, nil
	}
	do := tr.Wrap(next)
	ctx, req := context.Background(), &Request{}
	do(ctx, req)
	if !called {
		t.Error("nil-hook wrap lost the call")
	}
	if n := testing.AllocsPerRun(100, func() {
		do(ctx, req)
	}); n != 0 {
		t.Errorf("nil-hook tracing allocates %.1f per call", n)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Class: ClassExhausted, Op: OpGenerateRTL, Provider: "flaky", Attempts: 3, Err: errInjected}
	msg := e.Error()
	for _, want := range []string{"generate-rtl", "flaky", "exhausted", "3 attempt", "injected fault"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q lacks %q", msg, want)
		}
	}
	if ClassOf(e) != ClassExhausted {
		t.Errorf("ClassOf = %v", ClassOf(e))
	}
}

func TestClassTaxonomy(t *testing.T) {
	retryable := map[Class]bool{
		ClassOK: false, ClassRateLimited: true, ClassUnavailable: true,
		ClassTimeout: true, ClassCanceled: false, ClassInvalid: false,
		ClassCircuitOpen: false, ClassExhausted: false,
	}
	if len(retryable) != numClasses {
		t.Fatalf("taxonomy drifted: %d classes, test covers %d", numClasses, len(retryable))
	}
	for class, want := range retryable {
		if class.Retryable() != want {
			t.Errorf("%v.Retryable() = %v, want %v", class, class.Retryable(), want)
		}
		if class.String() == "unknown" {
			t.Errorf("class %d has no name", class)
		}
	}
	if ClassOf(nil) != ClassOK {
		t.Error("ClassOf(nil) != ok")
	}
	if ClassOf(context.DeadlineExceeded) != ClassTimeout {
		t.Error("deadline exceeded must classify as timeout")
	}
	if ClassOf(context.Canceled) != ClassCanceled {
		t.Error("canceled must classify as canceled")
	}
	if ClassOf(errInjected) != ClassInvalid {
		t.Error("unknown errors must classify as invalid (never retried)")
	}
}
