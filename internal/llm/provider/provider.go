// Package provider splits the LLM layer behind a production-shaped
// boundary: a Provider mints stateful Sessions whose calls are
// request-shaped (one Do per LLM interaction) and return typed results
// and classified errors. The calibrated deterministic model from
// internal/llm is re-homed here as the default "offline" provider; a
// seeded fault-injecting "flaky" provider exercises the failure paths.
//
// Around any provider, a composable middleware stack supplies the
// resilience a real deployment needs: token-bucket rate limiting, a
// circuit breaker, retry with full jitter, per-attempt timeouts, and
// metrics/tracing. Every middleware takes an injected Clock, so all
// time-dependent behavior is unit-testable with a mock clock and no
// real sleeps. See docs/PROVIDERS.md for the interface contract, the
// error classification and the middleware ordering rules.
package provider

import (
	"context"
	"errors"

	"repro/internal/llm"
)

// Op enumerates the request-shaped LLM calls a session serves. The
// four ops mirror llm.Session: two generation calls, one repair call,
// and the Review/Verification agents' log-analysis call.
type Op int

// Session operations.
const (
	OpGenerateTestbench Op = iota
	OpGenerateRTL
	OpRepairTestbench
	OpAnalysis

	numOps = 4
)

func (o Op) String() string {
	switch o {
	case OpGenerateTestbench:
		return "generate-testbench"
	case OpGenerateRTL:
		return "generate-rtl"
	case OpRepairTestbench:
		return "repair-testbench"
	case OpAnalysis:
		return "analysis"
	}
	return "invalid-op"
}

// Request describes one LLM call within a session. Callers may reuse
// one Request value across calls; middleware must treat it as
// read-only.
type Request struct {
	Op       Op
	Feedback *llm.Feedback    // corrective prompt for OpGenerateRTL / OpRepairTestbench (nil = zero-shot)
	Kind     llm.FeedbackKind // OpAnalysis: which agent is analysing
	Items    int              // OpAnalysis: findings in the analysed log
}

// Response is the typed result of one call. It is returned by value so
// the middleware chain stays allocation-free on the steady-state path.
type Response struct {
	Code    string  // generated artefact (empty for OpAnalysis)
	Latency float64 // modelled API wall-clock, seconds
}

// Session is one stateful conversation: the per-(problem, language)
// context a model keeps across generation and repair turns.
// Implementations must honour ctx cancellation while blocked.
type Session interface {
	Do(ctx context.Context, req *Request) (Response, error)
}

// Provider mints sessions and identifies itself for reports and cache
// keys.
type Provider interface {
	// Name is the registry name recorded in reports ("offline",
	// "flaky", ...). It is NOT the model name.
	Name() string
	// ModelName is the underlying model profile the provider serves.
	ModelName() string
	// License of the underlying model (Table 1 column).
	License() string
	// NewSession opens a conversation for one generation task.
	NewSession(req llm.GenRequest) (Session, error)
}

// DoFunc is the request-shaped call the middleware compose around.
type DoFunc func(ctx context.Context, req *Request) (Response, error)

// Middleware wraps the call path of every session minted by the
// provider it is installed on. One middleware value is shared across
// all sessions (and all worker goroutines) of that provider, so
// stateful middleware — the rate limiter, the circuit breaker —
// naturally throttles per provider, not per conversation.
type Middleware interface {
	Name() string
	// Wrap returns the wrapped call path. Wrap is invoked once per
	// session; per-call state must live in the returned DoFunc's frame
	// and shared state in the Middleware value itself.
	Wrap(next DoFunc) DoFunc
}

// Chain installs middleware around p. mws[0] is the outermost wrapper:
// a call flows mws[0] -> mws[1] -> ... -> provider session.
func Chain(p Provider, mws ...Middleware) Provider {
	if len(mws) == 0 {
		return p
	}
	return &chained{inner: p, mws: mws}
}

type chained struct {
	inner Provider
	mws   []Middleware
}

func (c *chained) Name() string      { return c.inner.Name() }
func (c *chained) ModelName() string { return c.inner.ModelName() }
func (c *chained) License() string   { return c.inner.License() }

func (c *chained) NewSession(req llm.GenRequest) (Session, error) {
	s, err := c.inner.NewSession(req)
	if err != nil {
		return nil, err
	}
	do := s.Do
	for i := len(c.mws) - 1; i >= 0; i-- {
		do = c.mws[i].Wrap(do)
	}
	return doSession{do: do, inner: s}, nil
}

// doSession keeps the innermost session alongside the wrapped call
// path so checkpointing (Snapshot/Restore) reaches through the
// middleware chain: middleware state is resilience policy, not
// conversation state, and is deliberately not part of a snapshot.
type doSession struct {
	do    DoFunc
	inner Session
}

func (s doSession) Do(ctx context.Context, req *Request) (Response, error) {
	return s.do(ctx, req)
}

func (s doSession) Snapshot() ([]byte, error) { return SnapshotSession(s.inner) }

func (s doSession) Restore(data []byte) error { return RestoreSession(s.inner, data) }

// Resumable is a provider Session whose conversation state can be
// checkpointed and restored (the provider-layer mirror of
// llm.ResumableSession). The pipeline state machine uses it to make
// runs crash-resumable: a checkpoint carries the session snapshot, and
// a restored session continues the conversation exactly where the
// snapshot left it.
type Resumable interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

var errNotResumable = errors.New("session does not support checkpointing")

// SnapshotSession snapshots s when it is resumable and reports a
// classified invalid error otherwise.
func SnapshotSession(s Session) ([]byte, error) {
	r, ok := s.(Resumable)
	if !ok {
		return nil, &Error{Class: ClassInvalid, Err: errNotResumable}
	}
	return r.Snapshot()
}

// RestoreSession restores a snapshot into s when it is resumable and
// reports a classified invalid error otherwise.
func RestoreSession(s Session, data []byte) error {
	r, ok := s.(Resumable)
	if !ok {
		return &Error{Class: ClassInvalid, Err: errNotResumable}
	}
	return r.Restore(data)
}
