package llm

import (
	"math/rand"
	"strings"

	"repro/internal/bench"
	"repro/internal/edatool"
)

// simSession is the deterministic simulated conversation for one
// (model, problem, language) triple. It renders candidate code as the
// problem's golden implementation plus a set of active injected defects,
// and interprets corrective feedback to decide which defects get fixed.
type simSession struct {
	profile *Profile
	req     GenRequest
	skill   LangSkill
	seed    int64
	src     *countedSource
	rng     *rand.Rand

	rtlMuts []Mutation // active defects in the current RTL revision
	tbMuts  []Mutation // active defects in the current testbench
	tbCode  string     // frozen testbench body (before mutations)
	started bool
	cogen   bool // testbench regenerated mid-loop (AIVRIL 1 flow)
}

func (s *simSession) verilog() bool { return s.req.Language == edatool.Verilog }

func (s *simSession) golden() string {
	if s.verilog() {
		return s.req.Problem.GoldenVerilog
	}
	return s.req.Problem.GoldenVHDL
}

// GenerateTestbench emits the self-verification testbench: a real
// self-checking bench over a model-dependent subset of the reference
// vectors, possibly carrying syntax defects of its own.
//
// When called after RTL generation has started (the AIVRIL 1-style
// co-generation flow regenerates the bench inside the functional loop),
// the simultaneous-generation complexity the paper describes degrades
// bench quality: lower coverage and higher error rates.
func (s *simSession) GenerateTestbench() (string, float64) {
	p := s.req.Problem
	coverage := s.skill.TBCoverage
	tbSynErr := s.skill.TBSyntaxErrRate
	tbFuncErr := s.skill.TBFuncErrRate
	if s.started { // co-generation mode
		s.cogen = true
		coverage *= 0.7
		tbSynErr = clamp01(tbSynErr * 1.5)
		tbFuncErr = clamp01(tbFuncErr*1.8 + 0.15)
	}
	n := int(float64(len(p.Vectors))*coverage + 0.5)
	if n < 1 {
		n = 1
	}
	var vecs []bench.Vec
	if p.Seq {
		// Sequential behaviour depends on the full history: the agent
		// bench keeps a prefix (shorter sims = weaker late-cycle coverage).
		vecs = append(vecs, p.Vectors[:n]...)
	} else {
		idxs := s.rng.Perm(len(p.Vectors))[:n]
		for _, i := range idxs {
			vecs = append(vecs, p.Vectors[i])
		}
	}
	// A flawed bench encodes a wrong expectation on one vector: correct
	// RTL will "fail" self-verification against it.
	if s.rng.Float64() < tbFuncErr && len(vecs) > 0 {
		k := s.rng.Intn(len(vecs))
		orig := vecs[k]
		corrupted := bench.Vec{In: orig.In, Out: map[string]uint64{}}
		for name, v := range orig.Out {
			corrupted.Out[name] = v
		}
		outs := p.Outputs()
		pt := outs[s.rng.Intn(len(outs))]
		mask := uint64(1)<<uint(pt.Width) - 1
		corrupted.Out[pt.Name] = (corrupted.Out[pt.Name] + 1) & mask
		vecs[k] = corrupted
	}
	if s.verilog() {
		s.tbCode = p.VerilogTBForVectors(vecs)
	} else {
		s.tbCode = p.VHDLTBForVectors(vecs)
	}
	// The bench itself may be syntactically flawed.
	s.tbMuts = nil
	if s.rng.Float64() < tbSynErr {
		s.tbMuts = sampleMutations(s.rng, s.tbCode, s.verilog(), MutSyntax, 1)
	}
	return render(s.tbCode, s.tbMuts), s.skill.TBGenLatency
}

// AnalysisLatency implements Session: the cost of the Review or
// Verification agent's own LLM call on a log with n findings.
func (s *simSession) AnalysisLatency(kind FeedbackKind, items int) float64 {
	base := s.skill.ReviewLatency
	per := 0.25
	if kind == FunctionalFeedback {
		base = s.skill.VerifyLatency
		per = 0.35
	}
	return base + per*float64(items)
}

// RepairTestbench applies syntax feedback to the testbench.
func (s *simSession) RepairTestbench(feedback *Feedback) (string, float64) {
	s.tbMuts = s.repair(s.tbMuts, feedback, s.tbCode)
	return render(s.tbCode, s.tbMuts), s.skill.RepairLatency
}

// GenerateRTL produces candidate RTL. A nil feedback means a fresh
// zero-shot attempt: defects are sampled per the calibrated rates.
// With feedback, the session repairs its current revision.
func (s *simSession) GenerateRTL(feedback *Feedback) (string, float64) {
	if feedback == nil || !s.started {
		s.started = true
		s.sampleInitialDefects()
		return render(s.golden(), s.rtlMuts), s.skill.GenLatency
	}
	s.rtlMuts = s.repair(s.rtlMuts, feedback, s.golden())
	return render(s.golden(), s.rtlMuts), s.skill.RepairLatency
}

// sampleInitialDefects draws the zero-shot defect set.
func (s *simSession) sampleInitialDefects() {
	p := s.req.Problem
	s.rtlMuts = nil
	if s.rng.Float64() < effectiveRate(s.skill.SyntaxErrRate, p.Hardness) {
		n := 1
		for n < 4 && s.rng.Float64() < s.skill.ExtraSyntaxErr {
			n++
		}
		s.rtlMuts = append(s.rtlMuts, sampleMutations(s.rng, s.golden(), s.verilog(), MutSyntax, n)...)
	}
	if s.rng.Float64() < effectiveRate(s.skill.FuncErrRate, p.Hardness) {
		n := 1
		for n < 3 && s.rng.Float64() < s.skill.ExtraFuncErr {
			n++
		}
		s.rtlMuts = append(s.rtlMuts, sampleMutations(s.rng, s.golden(), s.verilog(), MutFunctional, n)...)
	}
}

// repair decides, defect by defect, whether the feedback fixes it.
// Feedback that accurately localises a defect (its marker appears in a
// diagnostic snippet or message) is fixed with RepairSkill probability;
// unlocalised defects only get the blind-repair chance. Each applied
// repair may inject a fresh defect (RepairNoise), modelling regressions.
func (s *simSession) repair(muts []Mutation, feedback *Feedback, baseSrc string) []Mutation {
	if feedback == nil {
		return muts
	}
	var remaining []Mutation
	repaired := 0
	for _, m := range muts {
		var pFix float64
		switch m.Kind {
		case MutSyntax:
			if feedback.Kind == SyntaxFeedback && feedbackLocalises(feedback, m) {
				pFix = s.skill.RepairSkill
			} else {
				pFix = s.skill.BlindRepair
			}
		case MutFunctional:
			if feedback.Kind == FunctionalFeedback && len(feedback.Items) > 0 {
				pFix = s.skill.FuncRepairSkill
			} else {
				pFix = s.skill.BlindRepair * 0.5
			}
		}
		if s.rng.Float64() < pFix {
			repaired++
			continue // defect fixed: drop it
		}
		remaining = append(remaining, m)
	}
	// Regression risks: syntax repairs can introduce fresh syntax
	// defects (RepairNoise) or silently change behaviour
	// (FuncNoiseOnRepair); functional repairs can regress functionally.
	// Co-generation splits the model's attention between two artefacts,
	// roughly doubling regression risk (the "additional complexity" the
	// paper attributes to simultaneous generation).
	repairNoise := s.skill.RepairNoise
	funcNoise := s.skill.FuncNoiseOnRepair
	if s.cogen {
		repairNoise = clamp01(repairNoise * 1.8)
		funcNoise = clamp01(funcNoise*2.0 + 0.10)
	}
	// Chasing a phantom bug: functional feedback with nothing real to
	// fix (a flawed self-bench blaming correct RTL) tempts the model
	// into "fixing" working code.
	if feedback.Kind == FunctionalFeedback && len(muts) == 0 && len(feedback.Items) > 0 {
		if s.rng.Float64() < funcNoise*1.5 {
			remaining = append(remaining, sampleMutations(s.rng, baseSrc, s.verilog(), MutFunctional, 1)...)
		}
	}
	for i := 0; i < repaired; i++ {
		if s.rng.Float64() < repairNoise {
			kind := MutSyntax
			if feedback.Kind == FunctionalFeedback {
				kind = MutFunctional
			}
			remaining = append(remaining, sampleMutations(s.rng, baseSrc, s.verilog(), kind, 1)...)
		}
		if feedback.Kind == SyntaxFeedback && s.rng.Float64() < funcNoise {
			remaining = append(remaining, sampleMutations(s.rng, baseSrc, s.verilog(), MutFunctional, 1)...)
		}
	}
	return remaining
}

// feedbackLocalises reports whether any feedback item pinpoints the
// mutation: its marker text appears in a snippet or message, or the
// defect class is named.
func feedbackLocalises(fb *Feedback, m Mutation) bool {
	for _, item := range fb.Items {
		if m.Marker != "" &&
			(strings.Contains(item.Snippet, m.Marker) || strings.Contains(item.Message, m.Marker)) {
			return true
		}
		if strings.Contains(item.Hint, m.Desc) {
			return true
		}
	}
	// Structural defects (missing end/endmodule) rarely echo the marker;
	// accept generic syntax-error localisation when the feedback carries
	// line-level diagnostics at all.
	structural := strings.Contains(m.Desc, "missing") || strings.Contains(m.Desc, "misspelled")
	return structural && len(fb.Items) > 0
}
