package baseline

import (
	"testing"

	"repro/internal/core"
)

func TestComparatorsConfigure(t *testing.T) {
	cs := Comparators()
	if len(cs) != 2 {
		t.Fatalf("comparators = %d", len(cs))
	}
	for _, c := range cs {
		cfg := core.Config{FreezeTestbench: true}
		c.Configure(&cfg)
		switch c.Name {
		case "syntax-only-loop":
			if !cfg.SkipFunctional {
				t.Error("syntax-only must skip functional")
			}
		case "co-generation":
			if cfg.FreezeTestbench {
				t.Error("co-generation must unfreeze the testbench")
			}
		default:
			t.Errorf("unexpected comparator %q", c.Name)
		}
	}
}

func TestLiteratureMatchesPaperTable2(t *testing.T) {
	lit := Literature()
	byName := map[string]float64{}
	for _, l := range lit {
		byName[l.Technology] = l.PassAt1F
	}
	checks := map[string]float64{
		"ChipNemo-13B":      22.4,
		"RTLFixer":          36.8,
		"VeriAssist":        50.5,
		"Claude 3.5 Sonnet": 60.23,
		"AIVRIL":            67.3,
	}
	for name, want := range checks {
		if got, ok := byName[name]; !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
}

func TestPaperTable1Values(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var claude *PaperRow
	for i := range rows {
		if rows[i].Model == "claude-3.5-sonnet" {
			claude = &rows[i]
		}
	}
	if claude == nil {
		t.Fatal("claude row missing")
	}
	if claude.AIVRILVerilogF != 77 || claude.AIVRILVHDLF != 66 {
		t.Errorf("claude AIVRIL2 values: %+v", claude)
	}
	if claude.VerilogS != 91.03 {
		t.Errorf("claude baseline: %+v", claude)
	}
}
