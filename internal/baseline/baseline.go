// Package baseline defines the comparator configurations evaluated
// against AIVRIL 2 (Table 2) and the literature-reported results of
// systems that cannot be rerun (fine-tuned closed models etc.).
package baseline

import "repro/internal/core"

// Comparator names a pipeline variant.
type Comparator struct {
	Name      string
	Configure func(*core.Config)
	Note      string
}

// Comparators returns the rerunnable baseline variants:
//
//   - zero-shot: the pipeline's first generation, no loops (measured from
//     the baseline artefact, configuration unchanged);
//   - syntax-only: Review-Agent loop without functional verification,
//     the RTLFixer-style flow;
//   - co-generation: RTL and testbench regenerated together each
//     functional iteration, the AIVRIL 1 flow without the
//     testbench-first methodology.
func Comparators() []Comparator {
	return []Comparator{
		{
			Name:      "syntax-only-loop",
			Configure: func(c *core.Config) { c.SkipFunctional = true },
			Note:      "RTLFixer-style: compiler feedback only",
		},
		{
			Name:      "co-generation",
			Configure: func(c *core.Config) { c.FreezeTestbench = false },
			Note:      "AIVRIL 1-style: testbench regenerated with the RTL",
		},
	}
}

// LiteratureEntry is a pass@1F number taken from the paper's Table 2
// for systems we cannot rerun offline.
type LiteratureEntry struct {
	Technology string
	License    string
	PassAt1F   float64 // percent, Verilog only
}

// Literature reproduces the cited rows of Table 2 verbatim.
func Literature() []LiteratureEntry {
	return []LiteratureEntry{
		{"Llama3-70B", "Open Source", 37.82},
		{"CodeGen-16B", "Open Source", 41.9},
		{"CodeV-CodeQwen", "Open Source", 53.2},
		{"ChipNemo-13B", "Closed Source", 22.4},
		{"ChipNemo-70B", "Closed Source", 27.6},
		{"CodeGen-16B-Verilog-SFT", "Closed Source", 28.8},
		{"RTLFixer", "Closed Source", 36.8},
		{"VeriAssist", "Closed Source", 50.5},
		{"GPT-4o", "Closed Source", 51.29},
		{"Claude 3.5 Sonnet", "Closed Source", 60.23},
		{"AIVRIL", "Closed Source", 67.3},
	}
}

// PaperTable1 reproduces the paper's Table 1 values for comparison in
// EXPERIMENTS.md (percentages; -1 encodes N/A).
type PaperRow struct {
	Model              string
	VerilogS, VerilogF float64
	VHDLS, VHDLF       float64
	AIVRILVerilogS     float64
	AIVRILVerilogF     float64
	AIVRILVHDLS        float64
	AIVRILVHDLF        float64
}

// PaperTable1 returns the published Table 1 for reference.
func PaperTable1() []PaperRow {
	return []PaperRow{
		{"llama3-70b", 71.15, 37.82, 1.28, 0, 100, 55.13, 58.87, 32.69},
		{"gpt-4o", 71.79, 51.29, 39.1, 27.56, 100, 72.44, 100, 59.62},
		{"claude-3.5-sonnet", 91.03, 60.23, 88.46, 53.85, 100, 77, 100, 66},
	}
}
