// Package client is the typed client for the aivrild job service: it
// speaks the POST/GET/DELETE /jobs surface of internal/serve with
// retry/backoff that honours 429 Retry-After, follows transcript
// streams (NDJSON), and dispatches whole experiment sweeps through
// the queue so heavy traffic exercises the service instead of
// in-process runners.
//
// Because job IDs are content-addressed and the service persists the
// same exp.ProblemOutcome payload into the same cache cells a local
// sweep would, a dispatched sweep is byte-identical to — and merges
// with — an in-process run of the same configuration. The client
// verifies that property per cell: the server-derived job ID must
// equal the locally computed runner.Job key, so config drift between
// client and server surfaces as a loud error, never a silent cache
// split.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/serve"
)

// Config parameterises a Client. The zero value is usable.
type Config struct {
	// HTTPClient issues the requests (default: a fresh http.Client
	// with no global timeout — event streams are long-lived; per-call
	// deadlines come from the caller's context).
	HTTPClient *http.Client
	// RetryBase is the first backoff delay for retryable responses
	// (429, 503, transport errors); it doubles up to RetryCap. A 429's
	// Retry-After header overrides the computed delay. Defaults:
	// 100ms / 5s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxRetries caps retries per call; 0 retries until the context is
	// cancelled (the right default for sweep dispatch: a full queue is
	// backpressure, not failure).
	MaxRetries int
	// Priority is the dequeue band submitted with every dispatched
	// cell (0-9; see serve.Spec.Priority).
	Priority int
	// OnEvent, when set, receives every transcript event observed
	// while awaiting a job — the live-progress feed for sweeps.
	OnEvent func(jobID string, ev serve.Event)
}

// Client talks to one job service.
type Client struct {
	base string
	cfg  Config
}

// New validates the base URL (e.g. "http://127.0.0.1:8080") and
// returns a client.
func New(baseURL string, cfg Config) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q: need http or https", baseURL)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 5 * time.Second
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), cfg: cfg}, nil
}

// apiError mirrors the service's error body.
type apiError struct {
	Error string `json:"error"`
}

// StatusError reports a non-retryable HTTP failure.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Code, e.Msg)
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff computes the delay before retry attempt (0-based), honouring
// a Retry-After hint when the server sent one.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s >= 0 {
		d := time.Duration(s) * time.Second
		if d > c.cfg.RetryCap {
			d = c.cfg.RetryCap
		}
		if d > 0 {
			return d
		}
	}
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	return d
}

// doJSON issues one request with retry/backoff and decodes the
// response into out. Retryable: transport errors, 429 (honouring
// Retry-After) and 503 (a draining or restarting server). Anything
// else non-2xx fails with a StatusError.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = strings.NewReader(string(body))
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		retryAfter := ""
		if err == nil {
			retryAfter = resp.Header.Get("Retry-After")
			switch {
			case resp.StatusCode < 300:
				if out == nil {
					resp.Body.Close()
					return nil
				}
				derr := json.NewDecoder(resp.Body).Decode(out)
				resp.Body.Close()
				return derr
			case resp.StatusCode == http.StatusTooManyRequests,
				resp.StatusCode == http.StatusServiceUnavailable:
				// Backpressure / drain: retry below.
				var ae apiError
				json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ae)
				resp.Body.Close()
				err = &StatusError{Code: resp.StatusCode, Msg: ae.Error}
			default:
				var ae apiError
				json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ae)
				resp.Body.Close()
				if ae.Error == "" {
					ae.Error = resp.Status
				}
				return &StatusError{Code: resp.StatusCode, Msg: ae.Error}
			}
		}
		if c.cfg.MaxRetries > 0 && attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("client: %s %s: retries exhausted: %w", method, path, err)
		}
		if serr := sleep(ctx, c.backoff(attempt, retryAfter)); serr != nil {
			return fmt.Errorf("client: %s %s: %w (last: %v)", method, path, serr, err)
		}
	}
}

// Submit posts a job spec, retrying through 429 backpressure, and
// returns the accepted record. Submission is idempotent server-side.
func (c *Client) Submit(ctx context.Context, spec serve.Spec) (serve.Record, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.Record{}, err
	}
	var rec serve.Record
	err = c.doJSON(ctx, http.MethodPost, "/jobs", body, &rec)
	return rec, err
}

// Get fetches one job record.
func (c *Client) Get(ctx context.Context, id string) (serve.Record, error) {
	var rec serve.Record
	err := c.doJSON(ctx, http.MethodGet, "/jobs/"+id, nil, &rec)
	return rec, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (serve.Record, error) {
	var rec serve.Record
	err := c.doJSON(ctx, http.MethodDelete, "/jobs/"+id, nil, &rec)
	return rec, err
}

// Metrics fetches the service metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	var snap serve.MetricsSnapshot
	err := c.doJSON(ctx, http.MethodGet, "/metrics", nil, &snap)
	return snap, err
}

// Health probes /healthz (503 while draining is a failure here — the
// probe asks "can I submit", so it does not retry).
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Msg: "unhealthy"}
	}
	return nil
}

// Events follows a job's transcript as NDJSON, invoking fn per event.
// It returns nil when the stream ends (job terminal, or server drain
// cut it — Await distinguishes by re-fetching the record) and fn's
// error if fn stops the stream.
func (c *Client) Events(ctx context.Context, id string, fn func(serve.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/events?format=ndjson", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ae)
		return &StatusError{Code: resp.StatusCode, Msg: ae.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: bad event line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// terminal reports whether a status is settled for this server life.
func terminal(status string) bool {
	switch status {
	case serve.StatusCompleted, serve.StatusFailed, serve.StatusCanceled, serve.StatusInterrupted:
		return true
	}
	return false
}

// Await follows the job until it settles: it streams the transcript
// (feeding Config.OnEvent) and re-fetches the record when the stream
// ends; if the stream was cut without the job settling (server drain,
// stalled proxy), it falls back to polling. Interrupted counts as
// settled — the caller decides whether to resubmit (Evaluate does).
func (c *Client) Await(ctx context.Context, id string) (serve.Record, error) {
	for attempt := 0; ; attempt++ {
		rec, err := c.Get(ctx, id)
		if err != nil {
			return rec, err
		}
		if terminal(rec.Status) {
			return rec, nil
		}
		serr := c.Events(ctx, id, func(ev serve.Event) error {
			if c.cfg.OnEvent != nil {
				c.cfg.OnEvent(id, ev)
			}
			return nil
		})
		if serr != nil && ctx.Err() != nil {
			return rec, ctx.Err()
		}
		rec, err = c.Get(ctx, id)
		if err == nil && terminal(rec.Status) {
			return rec, nil
		}
		// Stream ended with the job still live: poll with backoff.
		if err := sleep(ctx, c.backoff(attempt, "")); err != nil {
			return rec, err
		}
	}
}

// Evaluate dispatches one experiment cell through the service and
// blocks until it has an outcome; it matches the exp.Dispatch shape
// modulo the context (close over one). Interrupted jobs (drain,
// transient provider outage) are resubmitted — idempotent, resuming
// from the server-side checkpoint — until the context gives up.
func (c *Client) Evaluate(ctx context.Context, job runner.Job, cell exp.RemoteCell) (exp.ProblemOutcome, error) {
	spec := serve.Spec{
		Problem:        cell.Problem,
		Model:          cell.Model,
		Language:       cell.Language,
		Provider:       cell.Provider,
		MaxSyntaxIters: cell.MaxSyntaxIters,
		MaxFuncIters:   cell.MaxFuncIters,
		MaxSimTime:     cell.MaxSimTime,
		CoGenTestbench: cell.CoGenTestbench,
		SkipFunctional: cell.SkipFunctional,
		Priority:       c.cfg.Priority,
	}
	wantID := job.Key()
	for {
		rec, err := c.Submit(ctx, spec)
		if err != nil {
			return exp.ProblemOutcome{}, err
		}
		if rec.ID != wantID {
			return exp.ProblemOutcome{}, fmt.Errorf(
				"client: server derived job %s for cell %s, local key is %s — client/server config mismatch (version skew, or a sweep knob the job spec cannot express)",
				rec.ID, job, wantID)
		}
		rec, err = c.Await(ctx, rec.ID)
		if err != nil {
			return exp.ProblemOutcome{}, err
		}
		switch rec.Status {
		case serve.StatusCompleted:
			if rec.Outcome == nil {
				return exp.ProblemOutcome{}, fmt.Errorf("client: job %s completed without an outcome", rec.ID)
			}
			return *rec.Outcome, nil
		case serve.StatusInterrupted:
			// Drain or transient outage: the checkpoint survived;
			// resubmission resumes it. Back off first — the server may
			// be restarting.
			if err := sleep(ctx, c.backoff(0, "")); err != nil {
				return exp.ProblemOutcome{}, err
			}
		default:
			return exp.ProblemOutcome{}, fmt.Errorf("client: cell %s %s: %s", job, rec.Status, rec.Error)
		}
	}
}
