package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/edatool"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/llm/provider"
	"repro/internal/runner"
	"repro/internal/serve"
)

func testServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	cfg.Stack = provider.DefaultStackConfig()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func spec(problem string) serve.Spec {
	return serve.Spec{Problem: problem, Model: "claude-3.5-sonnet", Language: "verilog"}
}

// TestClientLifecycle drives the typed client end-to-end: health probe,
// submit, await with live events, get, cancel-conflict, metrics.
func TestClientLifecycle(t *testing.T) {
	_, ts := testServer(t, serve.Config{})

	var mu sync.Mutex
	var stages []string
	cl, err := New(ts.URL, Config{OnEvent: func(id string, ev serve.Event) {
		mu.Lock()
		stages = append(stages, ev.Stage)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	rec, err := cl.Submit(ctx, spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.Status == "" {
		t.Fatalf("submit record incomplete: %+v", rec)
	}
	final, err := cl.Await(ctx, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != serve.StatusCompleted || final.Verdict != "pass" || final.Outcome == nil {
		t.Fatalf("await: %+v", final)
	}
	// The offline pipeline may finish before Await attaches (OnEvent is
	// then legitimately empty); the explicit stream replays the full
	// history deterministically.
	mu.Lock()
	stages = stages[:0]
	mu.Unlock()
	if err := cl.Events(ctx, rec.ID, func(ev serve.Event) error {
		mu.Lock()
		stages = append(stages, ev.Stage)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	sawState := false
	for _, st := range stages {
		if st == "state" {
			sawState = true
		}
	}
	mu.Unlock()
	if !sawState {
		t.Errorf("event replay never saw a state event: %v", stages)
	}

	got, err := cl.Get(ctx, rec.ID)
	if err != nil || got.Status != serve.StatusCompleted {
		t.Fatalf("get: %+v, %v", got, err)
	}
	// Canceling a finished job is a clean 409, surfaced as StatusError.
	if _, err := cl.Cancel(ctx, rec.ID); err == nil {
		t.Error("cancel of terminal job succeeded")
	} else if se, ok := err.(*StatusError); !ok || se.Code != http.StatusConflict {
		t.Errorf("cancel of terminal job: %v, want 409 StatusError", err)
	}
	snap, err := cl.Metrics(ctx)
	if err != nil || snap.Jobs[serve.StatusCompleted] != 1 {
		t.Errorf("metrics: %+v, %v", snap, err)
	}

	// Unknown base URLs fail construction, unknown jobs fail retrieval.
	if _, err := New("ftp://nope", Config{}); err == nil {
		t.Error("New accepted a non-HTTP URL")
	}
	if _, err := cl.Get(ctx, "deadbeef"); err == nil {
		t.Error("Get of unknown job succeeded")
	}
}

// countingTransport counts responses by status code.
type countingTransport struct {
	mu    sync.Mutex
	codes map[int]int
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if err == nil {
		c.mu.Lock()
		if c.codes == nil {
			c.codes = map[int]int{}
		}
		c.codes[resp.StatusCode]++
		c.mu.Unlock()
	}
	return resp, err
}

// TestClientRetries429: with one worker parked mid-job and a queue of
// depth one, a client submission meets 429 backpressure — it must keep
// retrying (honouring the Retry-After path) and land the job once the
// queue drains, without surfacing the 429 to the caller.
func TestClientRetries429(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	s, ts := testServer(t, serve.Config{
		Workers:    1,
		QueueDepth: 1,
		StepHook: func(string, *core.Checkpoint) error {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
			return nil
		},
	})

	ct := &countingTransport{}
	cl, err := New(ts.URL, Config{
		HTTPClient: &http.Client{Transport: ct},
		RetryBase:  2 * time.Millisecond,
		RetryCap:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := s.Submit(spec("gate_xor")); err != nil {
		t.Fatal(err)
	}
	<-entered // worker parked inside job A
	if _, err := s.Submit(spec("gate_or")); err != nil {
		t.Fatal(err) // fills the queue
	}

	done := make(chan error, 1)
	var rec serve.Record
	go func() {
		var serr error
		rec, serr = cl.Submit(ctx, spec("gate_and"))
		done <- serr
	}()
	// Give the client time to hit the wall a few times, then drain.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("submit returned while queue full: %v (rec %+v)", err, rec)
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("submit after retries: %v", err)
	}
	ct.mu.Lock()
	n429 := ct.codes[http.StatusTooManyRequests]
	ct.mu.Unlock()
	if n429 == 0 {
		t.Error("client never observed a 429 — test raced the queue")
	}
	if _, err := cl.Await(ctx, rec.ID); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateResubmitsInterrupted: an injected mid-run crash leaves
// the job interrupted with a checkpoint; Evaluate must resubmit and
// return the completed outcome of the resumed run.
func TestEvaluateResubmitsInterrupted(t *testing.T) {
	var fired atomic.Bool
	s, ts := testServer(t, serve.Config{
		Workers: 1,
		StepHook: func(string, *core.Checkpoint) error {
			if fired.CompareAndSwap(false, true) {
				return context.DeadlineExceeded // any non-nil error interrupts
			}
			return nil
		},
	})
	_ = s
	cl, err := New(ts.URL, Config{RetryBase: 2 * time.Millisecond, RetryCap: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	prob := bench.NewSuite().ByID("cmp_lt_w4")
	model := llm.ProfileByName("claude-3.5-sonnet")
	cfg := core.DefaultConfig(model, edatool.Verilog)
	job := runner.Job{
		Problem:  prob.ID,
		Model:    model.Name(),
		Language: edatool.Verilog.String(),
		Config:   cfg.Fingerprint(),
	}
	out, err := cl.Evaluate(ctx, job, exp.RemoteCell{
		Problem:        prob.ID,
		Model:          model.Name(),
		Language:       edatool.Verilog.String(),
		MaxSyntaxIters: cfg.MaxSyntaxIters,
		MaxFuncIters:   cfg.MaxFuncIters,
		MaxSimTime:     cfg.MaxSimTime,
		CoGenTestbench: !cfg.FreezeTestbench,
	})
	if err != nil {
		t.Fatalf("evaluate through interruption: %v", err)
	}
	if !fired.Load() {
		t.Fatal("crash hook never fired")
	}
	if out.ID != prob.ID || !out.LoopSyntaxOK {
		t.Errorf("resumed outcome: %+v", out)
	}
	rec, _ := cl.Get(ctx, job.Key())
	if rec.Resumes < 1 {
		t.Errorf("job completed without a resume: %+v", rec)
	}
}

// sweepOpts builds the exp options for one equivalence arm.
func sweepOpts(t *testing.T, cacheDir string, probs []*bench.Problem) exp.Options {
	t.Helper()
	cache, err := runner.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	return exp.Options{
		Problems: probs,
		Runner:   &runner.Runner{Workers: 2, Cache: cache},
	}
}

// TestRemoteSweepEquivalence is the tentpole acceptance property: a
// sweep dispatched through the job service must be byte-identical to
// the same sweep run in-process — same summaries, same content-
// addressed cache cells — including a Configure-hook cell that
// exercises the spec knob mapping.
func TestRemoteSweepEquivalence(t *testing.T) {
	probs := bench.NewSuite().Problems[:4]
	model := llm.ProfileByName("claude-3.5-sonnet")
	tighten := func(c *core.Config) {
		c.MaxSyntaxIters = 2
		c.MaxFuncIters = 2
	}

	for _, tc := range []struct {
		name      string
		configure func(*core.Config)
	}{
		{"defaults", nil},
		{"configured", tighten},
	} {
		t.Run(tc.name, func(t *testing.T) {
			localDir := t.TempDir()
			local := sweepOpts(t, localDir, probs)
			local.Configure = tc.configure
			want := exp.Run(model, edatool.Verilog, local)

			serveDir := t.TempDir()
			_, ts := testServer(t, serve.Config{CacheDir: serveDir})
			cl, err := New(ts.URL, Config{RetryBase: 2 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			var mu sync.Mutex
			var keys []string
			remote := sweepOpts(t, t.TempDir(), probs)
			remote.Configure = tc.configure
			remote.Dispatch = func(job runner.Job, cell exp.RemoteCell) (exp.ProblemOutcome, error) {
				mu.Lock()
				keys = append(keys, job.Key())
				mu.Unlock()
				return cl.Evaluate(ctx, job, cell)
			}
			got := exp.Run(model, edatool.Verilog, remote)

			if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("remote sweep diverged:\n got %+v\nwant %+v", got.Outcomes, want.Outcomes)
			}
			if got.N != want.N || got.LoopFuncPass != want.LoopFuncPass {
				t.Fatalf("summary diverged: got %+v want %+v", got, want)
			}
			if len(keys) != len(probs) {
				t.Fatalf("dispatched %d cells, want %d", len(keys), len(probs))
			}
			// The service persisted each cell into the same content-
			// addressed file an in-process sweep writes — byte-identical.
			for _, key := range keys {
				cell := filepath.Join(key[:2], key+".json")
				lb, err := os.ReadFile(filepath.Join(localDir, cell))
				if err != nil {
					t.Fatalf("local cell %s: %v", cell, err)
				}
				sb, err := os.ReadFile(filepath.Join(serveDir, cell))
				if err != nil {
					t.Fatalf("server cell %s: %v", cell, err)
				}
				if string(lb) != string(sb) {
					t.Errorf("cell %s differs between local and server caches:\nlocal: %s\nserver: %s", cell, lb, sb)
				}
			}
		})
	}
}

// TestRemoteSweepMergesWithSharedCache: pointing the local runner cache
// at the server's cache directory makes the remote sweep serve every
// already-dispatched cell from disk — the merge property benchsuite
// -server relies on.
func TestRemoteSweepMergesWithSharedCache(t *testing.T) {
	probs := bench.NewSuite().Problems[:2]
	model := llm.ProfileByName("claude-3.5-sonnet")

	dir := t.TempDir()
	_, ts := testServer(t, serve.Config{CacheDir: dir})
	cl, err := New(ts.URL, Config{RetryBase: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var dispatched atomic.Int32
	mkOpts := func() exp.Options {
		o := sweepOpts(t, dir, probs)
		o.Dispatch = func(job runner.Job, cell exp.RemoteCell) (exp.ProblemOutcome, error) {
			dispatched.Add(1)
			return cl.Evaluate(ctx, job, cell)
		}
		return o
	}
	first := exp.Run(model, edatool.Verilog, mkOpts())
	n := dispatched.Load()
	if int(n) != len(probs) {
		t.Fatalf("first sweep dispatched %d cells, want %d", n, len(probs))
	}
	second := exp.Run(model, edatool.Verilog, mkOpts())
	if dispatched.Load() != n {
		t.Errorf("second sweep re-dispatched cells: %d total, want %d", dispatched.Load(), n)
	}
	if !reflect.DeepEqual(first.Outcomes, second.Outcomes) {
		t.Error("cache-served sweep diverged from the dispatched one")
	}
}
