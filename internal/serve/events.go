package serve

import (
	"sync"
	"time"
)

// Event is one line of a job's transcript: the pipeline trace stages
// (testbench, review, prompt, codegen, verify, llm), the machine's
// "state" transitions, and "job" lifecycle markers. Events stream over
// GET /jobs/{id}/events as SSE or NDJSON.
type Event struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	Stage  string    `json:"stage"`
	Detail string    `json:"detail"`
}

// hub is a per-job event fan-out: it retains the full history (jobs
// are short transcripts, not log firehoses) so late subscribers replay
// from the start, and pushes live events to every subscriber. Closing
// the hub closes subscriber channels — the end-of-stream signal.
type hub struct {
	mu     sync.Mutex
	events []Event
	subs   map[chan Event]struct{}
	done   bool
}

func newHub() *hub {
	return &hub{subs: map[chan Event]struct{}{}}
}

func (h *hub) publish(stage, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	ev := Event{Seq: len(h.events) + 1, Time: time.Now(), Stage: stage, Detail: detail}
	h.events = append(h.events, ev)
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			// A stalled consumer loses live events; it still has the
			// history it was handed at subscribe time.
		}
	}
}

// subscribe returns the history so far and a live channel. The cancel
// function must be called when the consumer goes away.
func (h *hub) subscribe() ([]Event, chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := make([]Event, len(h.events))
	copy(hist, h.events)
	ch := make(chan Event, 256)
	if h.done {
		close(ch)
		return hist, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return hist, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.done = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = map[chan Event]struct{}{}
}

func (h *hub) closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}
