package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/runner"
)

// maxSubmitBody caps a submission request body. Specs are a few
// hundred bytes; 1 MiB is already generous, and the cap stops a
// client from streaming gigabytes at the JSON decoder.
const maxSubmitBody = 1 << 20

// HTTPTimeouts bounds the HTTP connection lifecycle. Write side is
// deliberately unbounded: the transcript stream is a long-lived
// response, and its liveness is governed by the server's shutdown
// channel and the client disconnecting, not a wall-clock cap.
type HTTPTimeouts struct {
	// ReadHeader bounds reading one request's headers — the classic
	// slowloris hole: without it a client dripping header bytes holds a
	// connection (and a listener slot) forever.
	ReadHeader time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests.
	Idle time.Duration
}

// DefaultHTTPTimeouts returns the production values.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{ReadHeader: 10 * time.Second, Idle: 2 * time.Minute}
}

// NewHTTPServer builds the hardened http.Server for a job-service
// handler. ReadTimeout and WriteTimeout stay zero on purpose: a
// whole-request read deadline would also arm the connection's
// background read during long-lived event streams and cut them off,
// and a write timeout would cap stream lifetime. Request bodies are
// instead bounded per-endpoint (MaxBytesReader plus a per-request
// read deadline in handleSubmit).
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		IdleTimeout:       t.Idle,
	}
}

// Handler returns the server's HTTP API:
//
//	POST   /jobs             submit a Spec (202; 409-free — idempotent)
//	GET    /jobs             list job records
//	GET    /jobs/{id}        one job record
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /jobs/{id}/events stream the transcript (SSE; NDJSON on request)
//	GET    /metrics          queue, per-state latency, resume + provider metrics
//	GET    /healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Slow-drip defence: even under the size cap a client could trickle
	// body bytes forever; bound the whole body read with a per-request
	// deadline (server-wide ReadTimeout would break the event streams).
	// Best-effort — recorders and exotic transports may not support it.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Now().Add(s.cfg.SubmitTimeout))
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	dec := json.NewDecoder(r.Body)
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	// Reject trailing garbage: a spec followed by anything but EOF is a
	// malformed request, not a submission plus noise to swallow.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "trailing data after job spec"})
		return
	}
	rec, err := s.Submit(spec)
	switch {
	case err == nil:
		status := http.StatusAccepted
		if rec.Status == StatusCompleted {
			status = http.StatusOK // idempotent resubmission of a finished job
		}
		writeJSON(w, status, rec)
	case errors.Is(err, runner.ErrQueueFull):
		// Backpressure: the bounded queue is the admission control.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining), errors.Is(err, runner.ErrPoolClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
	default:
		var se *SpecError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	if !s.Cancel(id) {
		writeJSON(w, http.StatusConflict, apiError{Error: "job already finished"})
		return
	}
	rec, _ := s.Get(id)
	writeJSON(w, http.StatusOK, rec)
}

// handleEvents streams a job's transcript. Default framing is
// Server-Sent Events; NDJSON is selected with ?format=ndjson or
// Accept: application/x-ndjson. The stream replays the job's history,
// then follows live events, and ends when the job reaches a terminal
// status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	hist, live, cancel, ok := s.Subscribe(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	defer cancel()

	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	emit := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if ndjson {
			_, err = fmt.Fprintf(w, "%s\n", data)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Stage, data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for _, ev := range hist {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job finished; stream complete
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.shutdownc:
			// Server drain: end the stream so http.Server.Shutdown is
			// not pinned for the whole drain timeout by a connected
			// subscriber. The job itself checkpoints and resumes; the
			// client re-subscribes after the restart.
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
