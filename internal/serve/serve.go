// Package serve is the crash-safe job service: it exposes the pipeline
// as a long-lived HTTP daemon (cmd/aivrild) that accepts generation
// jobs, fans them onto a bounded worker pool, streams their agent
// transcripts, and — the point of the exercise — survives being killed
// at any moment. Every job runs through the checkpointed state machine
// of internal/core; after each state transition the machine snapshot is
// persisted through the runner cache, so a crashed or drained server
// resumes interrupted jobs on the next start and drives them to the
// same verdict an uninterrupted run would have produced.
//
// See docs/SERVICE.md for the job lifecycle, the checkpoint format and
// the backpressure/resume semantics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/edatool"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/llm/provider"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Job statuses. queued and running are live; interrupted means the job
// holds a checkpoint and will resume on the next server start (or
// resubmission); completed, failed and canceled are terminal.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusCompleted   = "completed"
	StatusFailed      = "failed"
	StatusCanceled    = "canceled"
	StatusInterrupted = "interrupted"
)

// Spec is the client-facing job description (the POST /jobs body).
// The zero value of every optional knob selects the paper default, so
// {"problem": ..., "model": ..., "language": ...} is a complete spec.
type Spec struct {
	Problem  string `json:"problem"`
	Model    string `json:"model"`
	Language string `json:"language"`           // "verilog" (default) or "vhdl"
	Provider string `json:"provider,omitempty"` // registry name; "" = "offline"

	MaxSyntaxIters int    `json:"max_syntax_iters,omitempty"`
	MaxFuncIters   int    `json:"max_func_iters,omitempty"`
	MaxSimTime     uint64 `json:"max_sim_time,omitempty"`
	// Priority places the job in a pool dequeue band (0 = default,
	// lowest; 9 = highest). Scheduling only: it never enters the
	// content-addressed job ID, so identical specs at different
	// priorities share one job — and the first submission's priority
	// wins for a job that is already queued.
	Priority int `json:"priority,omitempty"`
	// CoGenTestbench regenerates the bench every functional iteration
	// (the AIVRIL 1 ablation); default keeps it frozen.
	CoGenTestbench bool `json:"cogen_testbench,omitempty"`
	SkipFunctional bool `json:"skip_functional,omitempty"`
}

// Record is one job's full lifecycle state: the API representation and
// the on-disk schema under <cache>/jobs/. IDs are content-addressed
// (the runner job key), so submitting the same spec twice is
// idempotent and a job's result lands in the exact cache cell a
// benchsuite sweep of the same cell would populate.
type Record struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	Status  string    `json:"status"`
	State   string    `json:"state,omitempty"` // last pipeline state reached
	Verdict string    `json:"verdict,omitempty"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`

	Outcome *exp.ProblemOutcome `json:"outcome,omitempty"`

	// Resume telemetry.
	Resumes            int `json:"resumes"`
	CheckpointsWritten int `json:"checkpoints_written"`
	StatesReplayed     int `json:"states_replayed"`
}

// Config parameterises the server.
type Config struct {
	// CacheDir roots all persistence: job records (jobs/), results and
	// checkpoints (the runner cache layout). Required.
	CacheDir string
	// Workers is the job worker pool size (default 2).
	Workers int
	// QueueDepth bounds the submission queue; a full queue answers 429
	// (default 16).
	QueueDepth int
	// Registry resolves job provider names (default
	// provider.DefaultRegistry).
	Registry *provider.Registry
	// Stack is the base middleware configuration for every job's
	// provider; the server installs its own shared metrics sink on top.
	Stack provider.StackConfig
	// Flaky parameterises jobs that select the fault-injecting provider.
	Flaky provider.FlakyConfig
	// StepDelay inserts an artificial pause after every state
	// transition. The offline pipeline completes in milliseconds; the
	// delay gives crash/drain tests (and the CI smoke script) a window
	// to kill the server mid-job.
	StepDelay time.Duration
	// SimMode selects the simulation execution backend for every job
	// (see edatool.Options.Mode). Output is byte-identical across
	// modes, so it never enters job IDs or cache cells.
	SimMode sim.BackendMode
	// StepHook, when set, runs after each checkpoint write with the job
	// id and the checkpoint. A non-nil return interrupts the job — the
	// in-process stand-in for SIGKILL in crash-resume tests.
	StepHook func(jobID string, cp *core.Checkpoint) error
	// RecordTTL, when positive, garbage-collects terminal job records —
	// completed, failed, canceled — and their leftover checkpoints once
	// a record has gone untouched for the TTL. Interrupted jobs are
	// resumable state, never collected, and result cells are the shared
	// experiment cache, also untouched: an expired job resubmitted later
	// completes instantly from its cell. Swept at startup recovery and
	// on a GCInterval ticker. Zero keeps records forever.
	RecordTTL time.Duration
	// GCInterval overrides the TTL sweep cadence (default RecordTTL/4,
	// clamped to [1s, 1m]).
	GCInterval time.Duration
	// SubmitTimeout bounds reading one submission request body (default
	// 10s) — with the 1 MiB body cap, the slow-drip half of the
	// slowloris defence.
	SubmitTimeout time.Duration
	// Logf receives server lifecycle lines (default: discard).
	Logf func(format string, args ...any)
}

// ErrDraining reports submission to a server that is shutting down.
var ErrDraining = errors.New("serve: draining")

// SpecError marks a job spec the server can never run (HTTP 400).
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

type job struct {
	rec    Record
	hub    *hub
	cancel context.CancelFunc // non-nil while running
}

// Server is the job service. Create with New, serve its Handler, and
// Shutdown to drain.
type Server struct {
	cfg   Config
	suite *bench.Suite
	cache *runner.Cache
	pool  *runner.Pool
	st    *stats
	prov  *provider.Metrics
	// elab is the server-wide elaboration-reuse cache, shared by every
	// job (see edatool.DesignCache). It is cache-key-neutral — warm
	// simulations are byte-identical to cold — so job IDs and cached
	// results are unaffected by sharing it across jobs and workers.
	elab *edatool.DesignCache
	// shutdownc closes when Shutdown begins. Long-lived request
	// handlers (the transcript streams) select on it so a drain is
	// never held hostage by a connected subscriber.
	shutdownc chan struct{}
	bg        sync.WaitGroup // background loops (TTL GC)

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool
}

// New opens the cache, starts the worker pool, and re-enqueues every
// job a previous process left queued, running, or interrupted — the
// crash-recovery scan. Jobs that were mid-run resume from their last
// checkpoint.
func New(cfg Config) (*Server, error) {
	if cfg.CacheDir == "" {
		return nil, errors.New("serve: Config.CacheDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Registry == nil {
		cfg.Registry = provider.DefaultRegistry
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cache, err := runner.OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.CacheDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		suite:     bench.NewSuite(),
		cache:     cache,
		pool:      runner.NewPool(cfg.Workers, cfg.QueueDepth),
		st:        &stats{},
		prov:      provider.NewMetrics(provider.RealClock()),
		elab:      edatool.NewDesignCache(),
		shutdownc: make(chan struct{}),
		jobs:      map[string]*job{},
	}
	if err := s.recover(); err != nil {
		s.pool.Close()
		return nil, err
	}
	if n := s.gc(time.Now()); n > 0 {
		cfg.Logf("serve: startup GC expired %d terminal job record(s)", n)
	}
	if cfg.RecordTTL > 0 {
		s.bg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// gcInterval derives the TTL sweep cadence.
func (s *Server) gcInterval() time.Duration {
	if s.cfg.GCInterval > 0 {
		return s.cfg.GCInterval
	}
	iv := s.cfg.RecordTTL / 4
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// gcLoop sweeps expired terminal records until shutdown.
func (s *Server) gcLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.gcInterval())
	defer t.Stop()
	for {
		select {
		case <-s.shutdownc:
			return
		case now := <-t.C:
			if n := s.gc(now); n > 0 {
				s.cfg.Logf("serve: GC expired %d terminal job record(s)", n)
			}
		}
	}
}

// gc removes terminal job records (and any checkpoint they left
// behind) older than the record TTL. It returns the number expired.
// Record-file removal happens under the lock so a concurrent
// resubmission of the same spec can never have its fresh record
// deleted out from under it.
func (s *Server) gc(now time.Time) int {
	ttl := s.cfg.RecordTTL
	if ttl <= 0 {
		return 0
	}
	s.mu.Lock()
	n := 0
	for id, j := range s.jobs {
		switch j.rec.Status {
		case StatusCompleted, StatusFailed, StatusCanceled:
		default:
			continue // live or resumable: not garbage
		}
		if now.Sub(j.rec.Updated) < ttl {
			continue
		}
		delete(s.jobs, id)
		os.Remove(filepath.Join(s.cfg.CacheDir, "jobs", id+".json"))
		if r, err := s.resolve(j.rec.Spec); err == nil {
			s.cache.DeleteCheckpoint(r.rjob)
		}
		j.hub.close()
		n++
	}
	s.mu.Unlock()
	if n > 0 {
		s.st.expired(n)
	}
	return n
}

// recover loads persisted job records and re-enqueues the unfinished
// ones. A record found in "running" belonged to a process that died
// mid-job; its checkpoint (if any survived) resumes it. The lock is
// held for the whole scan: pool workers start consuming re-enqueued
// jobs immediately, and they must not observe (or mutate) a record the
// scan is still touching.
func (s *Server) recover() error {
	dir := filepath.Join(s.cfg.CacheDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var rec Record
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" {
			continue // torn record: the job is resubmittable, not wedged
		}
		j := &job{rec: rec, hub: newHub()}
		switch rec.Status {
		case StatusQueued, StatusRunning, StatusInterrupted:
			j.rec.Status = StatusQueued
			s.jobs[rec.ID] = j
			id := rec.ID
			if err := s.pool.TrySubmitPriority(rec.Spec.Priority, func() { s.run(id) }); err != nil {
				// Queue smaller than the backlog: leave the job
				// interrupted; a resubmission re-enqueues it.
				j.rec.Status = StatusInterrupted
			}
			s.persist(j)
			s.cfg.Logf("serve: recovered job %s (%s)", rec.ID, j.rec.Status)
		default:
			j.hub.close()
			s.jobs[rec.ID] = j
		}
	}
	return nil
}

// resolved is a Spec bound to the concrete objects it names.
type resolved struct {
	prob *bench.Problem
	lang edatool.Language
	cfg  core.Config
	tag  string // provider tag for cache keys ("" = offline)
	rjob runner.Job
}

// resolve validates a spec and derives the job identity. The provider
// is NOT built here (it needs per-job trace plumbing); registry
// membership is checked so submission fails fast.
func (s *Server) resolve(spec Spec) (resolved, error) {
	var r resolved
	r.prob = s.suite.ByID(spec.Problem)
	if r.prob == nil {
		return r, specErrf("unknown problem %q", spec.Problem)
	}
	model := llm.ProfileByName(spec.Model)
	if model == nil {
		return r, specErrf("unknown model %q", spec.Model)
	}
	switch strings.ToLower(spec.Language) {
	case "", "verilog":
		r.lang = edatool.Verilog
	case "vhdl":
		r.lang = edatool.VHDL
	default:
		return r, specErrf("unknown language %q (verilog | vhdl)", spec.Language)
	}
	if spec.Priority < runner.MinPriority || spec.Priority > runner.MaxPriority {
		return r, specErrf("priority %d out of range [%d, %d]", spec.Priority, runner.MinPriority, runner.MaxPriority)
	}
	name := spec.Provider
	if name == "" {
		name = "offline"
	}
	known := false
	for _, n := range s.cfg.Registry.Names() {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return r, specErrf("unknown provider %q (have: %s)", name, strings.Join(s.cfg.Registry.Names(), ", "))
	}
	if name != "offline" {
		r.tag = name
	}
	cfg := core.DefaultConfig(model, r.lang)
	cfg.Provider = nil // built per run, with the job's trace plumbing
	if spec.MaxSyntaxIters > 0 {
		cfg.MaxSyntaxIters = spec.MaxSyntaxIters
	}
	if spec.MaxFuncIters > 0 {
		cfg.MaxFuncIters = spec.MaxFuncIters
	}
	if spec.MaxSimTime > 0 {
		cfg.MaxSimTime = spec.MaxSimTime
	}
	cfg.FreezeTestbench = !spec.CoGenTestbench
	cfg.SkipFunctional = spec.SkipFunctional
	cfg.SimMode = s.cfg.SimMode // performance-only; not in the fingerprint
	r.cfg = cfg
	r.rjob = runner.Job{
		Problem:  r.prob.ID,
		Model:    model.Name(),
		Language: r.lang.String(),
		Config:   cfg.Fingerprint(),
		Provider: r.tag,
	}
	return r, nil
}

// Submit validates, registers and enqueues a job. It is idempotent:
// resubmitting a live or completed job returns its current record;
// resubmitting a failed, canceled or interrupted job re-enqueues it
// (resuming from its checkpoint when one exists). The bounded queue
// rejects with runner.ErrQueueFull — the HTTP layer's 429.
func (s *Server) Submit(spec Spec) (Record, error) {
	r, err := s.resolve(spec)
	if err != nil {
		return Record{}, err
	}
	id := r.rjob.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Record{}, ErrDraining
	}
	j := s.jobs[id]
	if j != nil {
		switch j.rec.Status {
		case StatusQueued, StatusRunning, StatusCompleted:
			return j.rec, nil
		}
		// failed / canceled / interrupted: re-enqueue below.
	} else {
		j = &job{
			rec: Record{ID: id, Spec: spec, Created: time.Now()},
			hub: newHub(),
		}
	}
	prev := j.rec.Status
	j.rec.Status = StatusQueued
	j.rec.Error = ""
	if err := s.pool.TrySubmitPriority(j.rec.Spec.Priority, func() { s.run(id) }); err != nil {
		j.rec.Status = prev
		return Record{}, err
	}
	if j.hub.closed() {
		j.hub = newHub() // fresh event stream for the re-run
	}
	s.jobs[id] = j
	s.persist(j)
	j.hub.publish("job", "queued")
	return j.rec, nil
}

// Get returns a job's record.
func (s *Server) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Record{}, false
	}
	return j.rec, true
}

// List returns every job record, newest first.
func (s *Server) List() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.rec)
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].Created.After(out[i].Created) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel stops a job: a queued job is marked canceled before it
// starts, a running job has its context cancelled and finishes as
// canceled. Terminal jobs are left untouched (ok=false).
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.rec.Status {
	case StatusQueued:
		j.rec.Status = StatusCanceled
		s.persist(j)
		j.hub.publish("job", "canceled before start")
		j.hub.close()
		return true
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// Subscribe returns a job's event history and a live feed (see hub).
func (s *Server) Subscribe(id string) ([]Event, <-chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, nil, false
	}
	hist, ch, cancel := j.hub.subscribe()
	return hist, ch, cancel, true
}

// QueueDepth returns the number of queued-but-not-started jobs.
func (s *Server) QueueDepth() int { return s.pool.Depth() }

// Shutdown drains the server: no new submissions, running jobs are
// cancelled (they checkpoint at every boundary, so cancellation costs
// at most one in-flight state), every connected transcript stream is
// released via the shutdown channel, and the pool empties. Interrupted
// jobs resume on the next start. Idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Closing first: event-stream handlers select on this channel,
		// so a drain completes promptly even with live subscribers
		// attached (they would otherwise pin http.Server.Shutdown for
		// the whole drain timeout).
		close(s.shutdownc)
	}
	for _, j := range s.jobs {
		if j.rec.Status == StatusRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.pool.Close()
	s.bg.Wait()
}

// ShuttingDown returns the channel closed when Shutdown begins.
// Long-lived handlers and clients select on it to exit promptly.
func (s *Server) ShuttingDown() <-chan struct{} { return s.shutdownc }

// persist writes a job record atomically (temp file + rename). Caller
// holds s.mu.
func (s *Server) persist(j *job) {
	j.rec.Updated = time.Now()
	data, err := json.MarshalIndent(j.rec, "", " ")
	if err != nil {
		return
	}
	path := filepath.Join(s.cfg.CacheDir, "jobs", j.rec.ID+".json")
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rec*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), path)
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
}

// verdictOf reconstructs the pipeline verdict from a cached outcome.
func verdictOf(out exp.ProblemOutcome) string {
	switch {
	case !out.LoopSyntaxOK:
		return "syntax-fail"
	case out.SelfVerified:
		return "pass"
	default:
		return "func-fail"
	}
}

// run executes one job on a pool worker: serve it from the result
// cache if possible, otherwise restore-or-start the state machine and
// drive it state by state, checkpointing after every transition.
func (s *Server) run(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.rec.Status != StatusQueued {
		s.mu.Unlock()
		return // canceled while queued, or stale closure
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.rec.Status = StatusRunning
	s.persist(j)
	spec := j.rec.Spec
	hub := j.hub
	s.mu.Unlock()
	defer cancel()
	hub.publish("job", "running")

	r, err := s.resolve(spec)
	if err != nil {
		s.finish(j, func(rec *Record) {
			rec.Status = StatusFailed
			rec.Error = err.Error()
		})
		return
	}

	// A completed cell (this server's earlier life, or a benchsuite
	// sweep over the same cache) short-circuits the run.
	var cached exp.ProblemOutcome
	if ok, _ := s.cache.Load(r.rjob, &cached); ok {
		hub.publish("job", "served from result cache")
		s.finish(j, func(rec *Record) {
			rec.Status = StatusCompleted
			rec.Verdict = verdictOf(cached)
			rec.Outcome = &cached
			rec.State = core.StateDone.String()
		})
		return
	}

	// Build the provider with this job's trace plumbing and the
	// server-wide metrics sink.
	stack := s.cfg.Stack
	stack.Metrics = s.prov
	stack.Trace = func(stage, detail string) { hub.publish(stage, detail) }
	name := spec.Provider
	if name == "" {
		name = "offline"
	}
	model := llm.ProfileByName(spec.Model)
	prov, err := s.cfg.Registry.New(name, model, provider.BuildConfig{Stack: stack, Flaky: s.cfg.Flaky})
	if err != nil {
		s.finish(j, func(rec *Record) {
			rec.Status = StatusFailed
			rec.Error = err.Error()
		})
		return
	}
	cfg := r.cfg
	cfg.Provider = prov
	cfg.DesignCache = s.elab
	cfg.Trace = func(stage, detail string) { hub.publish(stage, detail) }

	pipe := core.New(cfg)
	m := pipe.NewMachine(r.prob)
	var cp core.Checkpoint
	if s.cache.LoadCheckpoint(r.rjob, &cp) {
		if rm, rerr := pipe.Restore(&cp, r.prob); rerr == nil {
			m = rm
			s.st.resumed()
			s.mu.Lock()
			j.rec.Resumes++
			s.mu.Unlock()
			hub.publish("job", fmt.Sprintf("resumed from checkpoint at state %s (step %d)", m.State(), m.Steps()))
		} else {
			hub.publish("job", fmt.Sprintf("checkpoint unusable (%v); starting over", rerr))
		}
	}
	resumed := m.Steps() > 0

	for {
		st := m.State()
		t0 := time.Now()
		done, serr := m.Step(ctx)
		s.st.observe(st, time.Since(t0))
		if serr != nil {
			s.finishStep(j, r, m, serr)
			return
		}
		if resumed {
			s.st.replayed()
			s.mu.Lock()
			j.rec.StatesReplayed++
			s.mu.Unlock()
		}
		if c, cerr := m.Checkpoint(); cerr == nil {
			if s.cache.StoreCheckpoint(r.rjob, c) == nil {
				s.st.checkpointed()
				s.mu.Lock()
				j.rec.CheckpointsWritten++
				s.mu.Unlock()
			}
			if hook := s.cfg.StepHook; hook != nil {
				if herr := hook(id, c); herr != nil {
					// Injected crash: the checkpoint is on disk, the
					// job stays resumable.
					s.finish(j, func(rec *Record) {
						rec.Status = StatusInterrupted
						rec.Error = herr.Error()
						rec.State = m.State().String()
					})
					return
				}
			}
		}
		s.mu.Lock()
		j.rec.State = m.State().String()
		s.mu.Unlock()
		hub.publish("state", m.State().String())
		if done {
			break
		}
		if d := s.cfg.StepDelay; d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
	}

	res := m.Result()
	out := exp.Outcome(r.prob, r.lang, cfg, r.tag, res)
	if err := s.cache.Store(r.rjob, out); err != nil {
		s.cfg.Logf("serve: job %s: result store failed: %v", id, err)
	}
	s.cache.DeleteCheckpoint(r.rjob)
	hub.publish("job", "completed: "+res.Verdict())
	s.finish(j, func(rec *Record) {
		rec.Status = StatusCompleted
		rec.Verdict = res.Verdict()
		rec.Outcome = &out
	})
}

// finishStep classifies a state-machine error into the job's terminal
// (or resumable) status: cancellation during drain and transient
// provider failures leave the job interrupted with its checkpoint
// intact; a user cancel is canceled; everything else is failed and the
// checkpoint is discarded (the same request would fail the same way).
func (s *Server) finishStep(j *job, r resolved, m *core.Machine, err error) {
	res := m.Abort(err)
	class := provider.ClassOf(err)
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := StatusFailed
	switch {
	case class == provider.ClassCanceled && draining:
		status = StatusInterrupted
	case class == provider.ClassCanceled:
		status = StatusCanceled
	case provider.ResumableAfter(err):
		status = StatusInterrupted
	default:
		s.cache.DeleteCheckpoint(r.rjob)
	}
	j.hub.publish("job", fmt.Sprintf("%s: %s", status, res.Verdict()))
	s.finish(j, func(rec *Record) {
		rec.Status = status
		rec.Verdict = res.Verdict()
		rec.Error = err.Error()
		rec.State = m.State().String()
	})
}

// finish applies a terminal mutation, persists the record, and closes
// the event stream.
func (s *Server) finish(j *job, mut func(*Record)) {
	s.mu.Lock()
	mut(&j.rec)
	j.cancel = nil
	s.persist(j)
	hub := j.hub
	s.mu.Unlock()
	hub.close()
}
