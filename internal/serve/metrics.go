package serve

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm/provider"
)

// stats aggregates server-side observability: per-state step counts
// and wall latency, plus the resume counters. Provider-layer call
// metrics live in the shared provider.Metrics sink.
type stats struct {
	mu         sync.Mutex
	stateCount [core.NumStates]int64
	stateWall  [core.NumStates]time.Duration
	ckpts      int
	resumes    int
	replays    int
	gcExpired  int
}

func (s *stats) observe(st core.State, d time.Duration) {
	if st < 0 || st >= core.NumStates {
		return
	}
	s.mu.Lock()
	s.stateCount[st]++
	s.stateWall[st] += d
	s.mu.Unlock()
}

func (s *stats) checkpointed() { s.mu.Lock(); s.ckpts++; s.mu.Unlock() }
func (s *stats) resumed()      { s.mu.Lock(); s.resumes++; s.mu.Unlock() }
func (s *stats) replayed()     { s.mu.Lock(); s.replays++; s.mu.Unlock() }
func (s *stats) expired(n int) { s.mu.Lock(); s.gcExpired += n; s.mu.Unlock() }

// StateMetric is one pipeline state's aggregate in the metrics
// snapshot.
type StateMetric struct {
	Count     int64   `json:"count"`
	AvgWallMs float64 `json:"avg_wall_ms"`
}

// MetricsSnapshot is the GET /metrics payload: queue backlog, job
// counts by status, per-state step latency, the resume counters, and
// the provider middleware's per-op call metrics (the PR-6 columns).
type MetricsSnapshot struct {
	QueueDepth int            `json:"queue_depth"`
	Jobs       map[string]int `json:"jobs"`

	States map[string]StateMetric `json:"states"`

	CheckpointsWritten int `json:"checkpoints_written"`
	JobsResumed        int `json:"jobs_resumed"`
	StatesReplayed     int `json:"states_replayed"`
	// RecordsExpired counts terminal job records removed by TTL GC.
	RecordsExpired int `json:"records_expired"`

	Provider map[string]provider.OpSnapshot `json:"provider"`
}

// Metrics returns a consistent snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		QueueDepth: s.pool.Depth(),
		Jobs:       map[string]int{},
		States:     map[string]StateMetric{},
		Provider:   s.prov.Snapshot(),
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		snap.Jobs[j.rec.Status]++
	}
	s.mu.Unlock()

	s.st.mu.Lock()
	for st := core.State(0); st < core.NumStates; st++ {
		n := s.st.stateCount[st]
		if n == 0 {
			continue
		}
		snap.States[st.String()] = StateMetric{
			Count:     n,
			AvgWallMs: float64(s.st.stateWall[st].Milliseconds()) / float64(n),
		}
	}
	snap.CheckpointsWritten = s.st.ckpts
	snap.JobsResumed = s.st.resumes
	snap.StatesReplayed = s.st.replays
	snap.RecordsExpired = s.st.gcExpired
	s.st.mu.Unlock()
	return snap
}
