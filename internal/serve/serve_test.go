package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/llm/provider"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		CacheDir: t.TempDir(),
		Workers:  2,
		Stack:    provider.DefaultStackConfig(),
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// waitStatus polls until the job reaches one of the wanted statuses.
func waitStatus(t *testing.T, s *Server, id string, want ...string) Record {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.Get(id)
		if ok {
			for _, w := range want {
				if rec.Status == w {
					return rec
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec, _ := s.Get(id)
	t.Fatalf("job %s stuck in %q (want %v)", id, rec.Status, want)
	return Record{}
}

func spec(problem string) Spec {
	return Spec{Problem: problem, Model: "claude-3.5-sonnet", Language: "verilog"}
}

// TestJobLifecycleHTTP drives the full happy path over the wire:
// submit, poll, events, idempotent resubmit, metrics, health.
func TestJobLifecycleHTTP(t *testing.T) {
	s := newServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid specs are 400, not enqueued.
	for _, bad := range []Spec{
		spec("no_such_problem"),
		{Problem: "gate_xor", Model: "no-such-model"},
		{Problem: "gate_xor", Model: "claude-3.5-sonnet", Language: "ada"},
		{Problem: "gate_xor", Model: "claude-3.5-sonnet", Provider: "no-such-provider"},
	} {
		if code := postJob(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Fatalf("bad spec %+v: status %d, want 400", bad, code)
		}
	}

	body, _ := json.Marshal(spec("gate_xor"))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", resp.StatusCode)
	}
	if rec.ID == "" {
		t.Fatal("submit returned no job id")
	}

	final := waitStatus(t, s, rec.ID, StatusCompleted)
	if final.Verdict != "pass" {
		t.Errorf("gate_xor verdict %q, want pass", final.Verdict)
	}
	if final.Outcome == nil || !final.Outcome.SelfVerified {
		t.Errorf("outcome missing or not self-verified: %+v", final.Outcome)
	}
	if final.CheckpointsWritten == 0 {
		t.Error("no checkpoints written during the run")
	}
	if final.State != core.StateDone.String() {
		t.Errorf("final state %q, want done", final.State)
	}

	// Resubmitting a completed job is idempotent: 200, same record.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again Record
	json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.ID != rec.ID || again.Status != StatusCompleted {
		t.Errorf("resubmit: %d %s/%s, want 200 %s/completed", resp.StatusCode, again.ID, again.Status, rec.ID)
	}

	// The event stream replays the full transcript and terminates.
	resp, err = http.Get(ts.URL + "/jobs/" + rec.ID + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var stages []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		stages = append(stages, ev.Stage+":"+ev.Detail)
	}
	joined := strings.Join(stages, "\n")
	for _, want := range []string{"job:queued", "job:running", "state:done", "job:completed: pass"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event stream missing %q:\n%s", want, joined)
		}
	}

	// Metrics reflect the run.
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.CheckpointsWritten == 0 || snap.Jobs[StatusCompleted] != 1 {
		t.Errorf("metrics: %+v", snap)
	}
	if _, ok := snap.States[core.StateTestbenchGen.String()]; !ok {
		t.Errorf("metrics missing per-state latency: %+v", snap.States)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// Unknown job id → 404.
	resp, err = http.Get(ts.URL + "/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

func postJob(t *testing.T, base string, s Spec) int {
	t.Helper()
	body, _ := json.Marshal(s)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure429: with one worker held mid-job and a queue of
// depth one, the third distinct submission must bounce with 429 and a
// Retry-After hint — the bounded queue is the admission control.
func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.StepHook = func(string, *core.Checkpoint) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recA, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the worker is now parked inside job A

	if _, err := s.Submit(spec("gate_or")); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	body, _ := json.Marshal(spec("gate_and"))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.QueueDepth() != 1 {
		t.Errorf("QueueDepth = %d, want 1", s.QueueDepth())
	}

	close(release)
	waitStatus(t, s, recA.ID, StatusCompleted)

	// Capacity freed: the rejected spec now goes through.
	if code := postJob(t, ts.URL, spec("gate_and")); code != http.StatusAccepted {
		t.Fatalf("resubmit after drain: %d, want 202", code)
	}
}

// TestCancel covers both cancellation arms: a queued job dies before it
// starts; a running job has its context cancelled and lands in
// canceled with a classified abort verdict.
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 4
	cfg.StepHook = func(string, *core.Checkpoint) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recA, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	recB, err := s.Submit(spec("gate_or"))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+recB.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	if rec, _ := s.Get(recB.ID); rec.Status != StatusCanceled {
		t.Fatalf("queued job status %q after cancel", rec.Status)
	}

	// Cancel the running job, then release the worker: the next LLM
	// call sees the dead context and the job finishes canceled.
	if !s.Cancel(recA.ID) {
		t.Fatal("Cancel(running) returned false")
	}
	close(release)
	rec := waitStatus(t, s, recA.ID, StatusCanceled, StatusCompleted)
	// gate_xor's post-checkpoint states may not need the provider again,
	// in which case the run legitimately completes; otherwise it must be
	// a classified cancel.
	if rec.Status == StatusCanceled && !strings.Contains(rec.Verdict, "aborted(canceled)") {
		t.Errorf("canceled verdict %q", rec.Verdict)
	}

	// A terminal job can't be cancelled: 409.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+recB.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal: %d, want 409", resp.StatusCode)
	}
}

// TestCrashResume is the tentpole property end-to-end: kill a job
// mid-run (injected via StepHook — the in-process SIGKILL), restart the
// service on the same cache directory, and the job resumes from its
// checkpoint and finishes with the exact outcome of an uninterrupted
// run.
func TestCrashResume(t *testing.T) {
	// Reference: the same job on a pristine server.
	ref := newServer(t, testConfig(t))
	refRec, err := ref.Submit(spec("cmp_lt_w4"))
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, ref, refRec.ID, StatusCompleted)

	// Crash the job after its third checkpoint.
	dir := t.TempDir()
	var steps atomic.Int32
	cfg := Config{
		CacheDir: dir,
		Workers:  1,
		Stack:    provider.DefaultStackConfig(),
		StepHook: func(string, *core.Checkpoint) error {
			if steps.Add(1) == 3 {
				return errors.New("injected crash")
			}
			return nil
		},
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s1.Submit(spec("cmp_lt_w4"))
	if err != nil {
		t.Fatal(err)
	}
	interrupted := waitStatus(t, s1, rec.ID, StatusInterrupted)
	if interrupted.Error == "" || interrupted.CheckpointsWritten < 3 {
		t.Fatalf("interrupted record incomplete: %+v", interrupted)
	}
	s1.Shutdown()

	// Restart on the same directory: recovery re-enqueues the job and it
	// resumes from the checkpoint without being resubmitted.
	s2 := newServer(t, Config{CacheDir: dir, Workers: 1, Stack: provider.DefaultStackConfig()})
	final := waitStatus(t, s2, rec.ID, StatusCompleted)
	if final.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1", final.Resumes)
	}
	if final.StatesReplayed == 0 {
		t.Error("no states replayed on resume")
	}
	if final.Verdict != want.Verdict {
		t.Errorf("resumed verdict %q, want %q", final.Verdict, want.Verdict)
	}
	if !reflect.DeepEqual(final.Outcome, want.Outcome) {
		t.Errorf("resumed outcome diverged:\n got %+v\nwant %+v", final.Outcome, want.Outcome)
	}

	snap := s2.Metrics()
	if snap.JobsResumed < 1 || snap.StatesReplayed == 0 {
		t.Errorf("resume metrics: %+v", snap)
	}
}

// TestDrainInterruptsAndRestartResumes: Shutdown cancels running jobs;
// a job caught mid-run is interrupted with its checkpoint intact and
// the next server start drives it to the clean-run outcome.
func TestDrainInterruptsAndRestartResumes(t *testing.T) {
	ref := newServer(t, testConfig(t))
	refRec, err := ref.Submit(spec("vec_xor_w8"))
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, ref, refRec.ID, StatusCompleted)

	dir := t.TempDir()
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	cfg := Config{
		CacheDir: dir,
		Workers:  1,
		Stack:    provider.DefaultStackConfig(),
		StepHook: func(string, *core.Checkpoint) error {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
			return nil
		},
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s1.Submit(spec("vec_xor_w8"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // job is past its first checkpoint, parked in the hook

	done := make(chan struct{})
	go func() { s1.Shutdown(); close(done) }()
	close(release) // let the worker observe the cancelled context
	<-done

	rec1, _ := s1.Get(rec.ID)
	if rec1.Status != StatusInterrupted && rec1.Status != StatusCompleted {
		t.Fatalf("after drain: status %q", rec1.Status)
	}

	// Submitting to a draining server is refused.
	if _, err := s1.Submit(spec("gate_and")); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: %v, want ErrDraining", err)
	}

	s2 := newServer(t, Config{CacheDir: dir, Workers: 1, Stack: provider.DefaultStackConfig()})
	final := waitStatus(t, s2, rec.ID, StatusCompleted)
	if final.Verdict != want.Verdict {
		t.Errorf("post-drain verdict %q, want %q", final.Verdict, want.Verdict)
	}
	if !reflect.DeepEqual(final.Outcome, want.Outcome) {
		t.Errorf("post-drain outcome diverged:\n got %+v\nwant %+v", final.Outcome, want.Outcome)
	}
	if rec1.Status == StatusInterrupted && final.Resumes < 1 {
		t.Errorf("interrupted job completed without a resume (Resumes=%d)", final.Resumes)
	}
}

// TestResultCacheShortCircuit: a job whose cell is already in the
// result cache (here: left by a previous server's completed run whose
// job record was lost) completes instantly from the cache.
func TestResultCacheShortCircuit(t *testing.T) {
	dir := t.TempDir()
	s1 := newServer(t, Config{CacheDir: dir, Stack: provider.DefaultStackConfig()})
	rec, err := s1.Submit(spec("gate_or"))
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, s1, rec.ID, StatusCompleted)
	s1.Shutdown()

	// Lose the job record but keep the result cache.
	if err := os.Remove(filepath.Join(dir, "jobs", rec.ID+".json")); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, Config{CacheDir: dir, Stack: provider.DefaultStackConfig()})
	rec2, err := s2.Submit(spec("gate_or"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, s2, rec2.ID, StatusCompleted)
	if final.CheckpointsWritten != 0 {
		t.Errorf("cache-served job wrote %d checkpoints", final.CheckpointsWritten)
	}
	if final.Verdict != want.Verdict || !reflect.DeepEqual(final.Outcome, want.Outcome) {
		t.Errorf("cache-served outcome diverged from original")
	}
}

// TestFlakyProviderInterruptsThenResumes: provider errors classified as
// transient leave the job interrupted with its checkpoint kept, and
// restarting the service (here with a fresh fault seed each time — the
// outage profile changes between process lives, the conversation state
// does not) resumes it until it completes with the offline-equivalent
// outcome. The fault RNG is per-provider-instance and deterministic, so
// a single fixed seed can livelock on the same call forever; rotating
// seeds across restarts is exactly the real-world "the outage ended"
// scenario.
func TestFlakyProviderInterruptsThenResumes(t *testing.T) {
	dir := t.TempDir()
	stack := provider.DefaultStackConfig()
	// Strip retries so injected faults surface as job interruptions
	// instead of being absorbed by the middleware.
	stack.Attempts = 1
	stack.BreakerThreshold = 0

	sp := spec("cmp_lt_w4")
	sp.Provider = "flaky"

	var final Record
	var id string
	interruptions := 0
	for seed := int64(1); seed <= 40; seed++ {
		s, err := New(Config{
			CacheDir: dir,
			Workers:  1,
			Stack:    stack,
			Flaky:    provider.FlakyConfig{Seed: seed, ErrorRate: 0.4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if id == "" {
			rec, err := s.Submit(sp)
			if err != nil {
				s.Shutdown()
				t.Fatal(err)
			}
			id = rec.ID
		}
		// Recovery re-enqueued the interrupted job on later iterations;
		// nothing to submit.
		final = waitStatus(t, s, id, StatusCompleted, StatusInterrupted, StatusFailed)
		s.Shutdown()
		if final.Status == StatusInterrupted {
			interruptions++
			continue
		}
		break
	}
	if final.Status != StatusCompleted {
		t.Fatalf("flaky job never completed: %+v", final)
	}
	if interruptions == 0 {
		t.Skip("fault injection never fired mid-run; nothing to assert")
	}
	if final.Resumes == 0 {
		t.Errorf("job completed after %d interruptions with Resumes=0", interruptions)
	}

	// The completed outcome must match the offline run of the same cell:
	// fault injection wraps the same deterministic model.
	ref := newServer(t, testConfig(t))
	refRec, err := ref.Submit(spec("cmp_lt_w4"))
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, ref, refRec.ID, StatusCompleted)
	got, wantOut := *final.Outcome, *want.Outcome
	got.Provider, wantOut.Provider = "", ""
	if !reflect.DeepEqual(got, wantOut) {
		t.Errorf("flaky-resumed outcome diverged from offline:\n got %+v\nwant %+v", got, wantOut)
	}
}

// TestRecoverSkipsTornRecord: a corrupt job record on disk must not
// wedge server startup.
func TestRecoverSkipsTornRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "torn.json"), []byte("{\"id\": \"x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newServer(t, Config{CacheDir: dir, Stack: provider.DefaultStackConfig()})
	if got := len(s.List()); got != 0 {
		t.Errorf("torn record surfaced as %d jobs", got)
	}
}

// TestVerdictOf pins the cached-outcome verdict reconstruction.
func TestVerdictOf(t *testing.T) {
	cases := []struct {
		syntax, selfv bool
		want          string
	}{
		{false, false, "syntax-fail"},
		{true, true, "pass"},
		{true, false, "func-fail"},
	}
	for _, tc := range cases {
		out := exp.ProblemOutcome{LoopSyntaxOK: tc.syntax, SelfVerified: tc.selfv}
		if got := verdictOf(out); got != tc.want {
			t.Errorf("verdictOf(syntax=%v, selfv=%v) = %q, want %q", tc.syntax, tc.selfv, got, tc.want)
		}
	}
}

func ExampleSpec() {
	data, _ := json.Marshal(spec("gate_xor"))
	fmt.Println(string(data))
	// Output: {"problem":"gate_xor","model":"claude-3.5-sonnet","language":"verilog"}
}

// TestShutdownUnblocksEventSubscribers pins the drain bugfix: with a
// job parked mid-run and a live SSE subscriber attached, Shutdown must
// release the stream immediately — not leave it pinning the HTTP
// server for the whole drain timeout.
func TestShutdownUnblocksEventSubscribers(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.StepHook = func(string, *core.Checkpoint) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rec, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // job parked mid-run: its stream can only end via shutdown

	resp, err := http.Get(ts.URL + "/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamDone := make(chan struct{})
	go func() { io.Copy(io.Discard, resp.Body); close(streamDone) }()

	shutdownDone := make(chan struct{})
	go func() { s.Shutdown(); close(shutdownDone) }()

	select {
	case <-streamDone:
		// released promptly — the drain is not hostage to the subscriber
	case <-time.After(2 * time.Second):
		t.Fatal("event stream still open 2s into shutdown")
	}
	close(release) // let the parked worker observe the cancelled context
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
}

// TestSubmitBodyLimits pins the request-body hardening: oversized
// bodies are 413, trailing garbage after the spec is 400, and a clean
// spec still goes through.
func TestSubmitBodyLimits(t *testing.T) {
	s := newServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body []byte) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&ae)
		return resp.StatusCode, ae.Error
	}

	// A single 2 MiB JSON document blows the 1 MiB cap.
	big, _ := json.Marshal(map[string]string{"problem": strings.Repeat("a", 2<<20)})
	if code, msg := post(big); code != http.StatusRequestEntityTooLarge || !strings.Contains(msg, "exceeds") {
		t.Errorf("oversized body: %d %q, want 413", code, msg)
	}

	good, _ := json.Marshal(spec("gate_xor"))

	// Trailing garbage and concatenated documents are malformed requests.
	if code, msg := post(append(append([]byte{}, good...), []byte("garbage")...)); code != http.StatusBadRequest || !strings.Contains(msg, "trailing") {
		t.Errorf("trailing garbage: %d %q, want 400 trailing", code, msg)
	}
	if code, _ := post(append(append([]byte{}, good...), good...)); code != http.StatusBadRequest {
		t.Errorf("two specs in one body: %d, want 400", code)
	}
	if code, _ := post([]byte("{not json")); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", code)
	}

	// The clean spec still lands.
	if code, _ := post(good); code != http.StatusAccepted {
		t.Errorf("valid spec: %d, want 202", code)
	}
}

// TestSlowLorisDefence drives the hardened http.Server over a real
// listener: a connection dripping headers is cut at ReadHeaderTimeout,
// and a stalled submission body is bounded by SubmitTimeout — while a
// well-behaved request on the same server still succeeds.
func TestSlowLorisDefence(t *testing.T) {
	cfg := testConfig(t)
	cfg.SubmitTimeout = 300 * time.Millisecond
	s := newServer(t, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer("", s.Handler(), HTTPTimeouts{ReadHeader: 200 * time.Millisecond, Idle: time.Second})
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Header drip: the server must hang up around ReadHeaderTimeout.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow:")
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent request")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("header drip held the connection %v, want ~200ms", d)
	}

	// Body stall: headers complete, body never arrives. The per-request
	// read deadline in handleSubmit must produce a response (or hangup)
	// promptly instead of waiting forever.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n{\"pro")
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	start = time.Now()
	buf := make([]byte, 512)
	n, rerr := conn2.Read(buf)
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("stalled body held the connection %v, want ~SubmitTimeout", d)
	}
	if rerr == nil && !strings.Contains(string(buf[:n]), "400") {
		t.Errorf("stalled submission answered %q, want a 400", string(buf[:n]))
	}

	// The same server still serves an honest client.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz on hardened server: %d", resp.StatusCode)
	}
}

// TestRecordTTLGC: terminal job records (and their on-disk files)
// expire after the TTL while the shared result cells survive, so an
// expired job resubmitted later completes instantly from the cache.
// Startup recovery applies the same sweep to records left by an
// earlier process.
func TestRecordTTLGC(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CacheDir:   dir,
		Workers:    1,
		Stack:      provider.DefaultStackConfig(),
		RecordTTL:  100 * time.Millisecond,
		GCInterval: 20 * time.Millisecond,
	}
	s := newServer(t, cfg)
	rec, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, rec.ID, StatusCompleted)
	cell := filepath.Join(dir, rec.ID[:2], rec.ID+".json")
	if _, err := os.Stat(cell); err != nil {
		t.Fatalf("result cell missing after completion: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := s.Get(rec.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completed record never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", rec.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("expired record file still on disk: %v", err)
	}
	if _, err := os.Stat(cell); err != nil {
		t.Errorf("GC removed the shared result cell: %v", err)
	}
	if snap := s.Metrics(); snap.RecordsExpired < 1 {
		t.Errorf("RecordsExpired = %d, want >= 1", snap.RecordsExpired)
	}

	// Resubmission of the expired job is served from the result cell.
	rec2, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	if final := waitStatus(t, s, rec2.ID, StatusCompleted); final.CheckpointsWritten != 0 {
		t.Errorf("expired-then-resubmitted job recomputed (%d checkpoints)", final.CheckpointsWritten)
	}
	s.Shutdown()

	// Startup sweep: an old terminal record from a previous process life
	// is collected during New, before the GC ticker ever fires.
	old := Record{
		ID:      "feedfacefeedface",
		Spec:    spec("gate_or"),
		Status:  StatusFailed,
		Created: time.Now().Add(-time.Hour),
		Updated: time.Now().Add(-time.Hour),
	}
	data, _ := json.Marshal(old)
	if err := os.WriteFile(filepath.Join(dir, "jobs", old.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newServer(t, cfg)
	if _, ok := s2.Get(old.ID); ok {
		t.Error("stale terminal record survived startup GC")
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", old.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("stale record file survived startup GC: %v", err)
	}
}

// TestPriorityScheduling: with the single worker parked, a priority-9
// submission dequeues before an earlier priority-0 one, and an
// out-of-range priority is rejected as a spec error.
func TestPriorityScheduling(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	var mu sync.Mutex
	var order []string
	seen := map[string]bool{}
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 8
	cfg.StepHook = func(id string, _ *core.Checkpoint) error {
		mu.Lock()
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
		mu.Unlock()
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker, err := s.Submit(spec("gate_xor"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker parked inside the blocker

	low := spec("gate_or") // priority 0, submitted first
	lowRec, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := spec("gate_and")
	high.Priority = 9
	highRec, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}

	close(release)
	waitStatus(t, s, blocker.ID, StatusCompleted)
	waitStatus(t, s, lowRec.ID, StatusCompleted)
	waitStatus(t, s, highRec.ID, StatusCompleted)

	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	want := []string{blocker.ID, highRec.ID, lowRec.ID}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dequeue order %v, want %v (high priority must jump the queue)", got, want)
	}

	// Out-of-range priority: SpecError in-process, 400 over HTTP.
	bad := spec("vec_and_w8")
	bad.Priority = 10
	var se *SpecError
	if _, err := s.Submit(bad); !errors.As(err, &se) {
		t.Errorf("priority 10: %v, want SpecError", err)
	}
	if code := postJob(t, ts.URL, bad); code != http.StatusBadRequest {
		t.Errorf("priority 10 over HTTP: %d, want 400", code)
	}
}
