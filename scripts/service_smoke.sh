#!/usr/bin/env bash
# Crash-resume smoke test for the aivrild job service.
#
# The in-process test suite proves the resume property with injected
# interruptions (serve_test.go); this script proves it against the real
# binary and a real SIGKILL: start aivrild, submit a job through the
# fault-injecting flaky provider, kill -9 the server mid-run, restart
# it on the same cache directory, and require the job to resume from
# its checkpoint and finish with the exact verdict an uninterrupted
# offline run produces (fault injection wraps the same deterministic
# model, so the verdicts must agree).
#
# Requires: go, curl, jq.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ADDR="${AIVRILD_ADDR:-127.0.0.1:18467}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "smoke: $*"; }
die() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$WORK/aivrild" ./cmd/aivrild

PROBLEM=cmp_lt_w4
OFFLINE_SPEC="{\"problem\":\"$PROBLEM\",\"model\":\"claude-3.5-sonnet\",\"language\":\"verilog\"}"
FLAKY_SPEC="{\"problem\":\"$PROBLEM\",\"model\":\"claude-3.5-sonnet\",\"language\":\"verilog\",\"provider\":\"flaky\"}"

wait_healthy() {
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    die "server at $BASE never became healthy"
}

# get_job <id> <jq-expr>
get_job() { curl -fsS "$BASE/jobs/$1" | jq -r "$2"; }

# wait_terminal <id> [ticks] -> echoes the terminal status
wait_terminal() {
    local id="$1" ticks="${2:-400}" st=""
    for _ in $(seq 1 "$ticks"); do
        st="$(get_job "$id" .status)"
        case "$st" in
        completed | failed | canceled | interrupted)
            echo "$st"
            return 0
            ;;
        esac
        sleep 0.1
    done
    die "job $id stuck in $st"
}

stop_server() {
    [ -n "$PID" ] || return 0
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
}

# --- Reference: an uninterrupted offline run of the same problem. -----
log "offline reference run"
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/ref" &
PID=$!
wait_healthy
REF_ID="$(curl -fsS -X POST "$BASE/jobs" -d "$OFFLINE_SPEC" | jq -r .id)"
[ -n "$REF_ID" ] && [ "$REF_ID" != null ] || die "submission returned no job id"
[ "$(wait_terminal "$REF_ID")" = completed ] || die "reference run did not complete"
WANT_VERDICT="$(get_job "$REF_ID" .verdict)"
log "reference verdict: $WANT_VERDICT"
stop_server

# --- Crash run: flaky-provider job, SIGKILL the server mid-job. -------
# The step delay stretches the run to seconds so the kill lands between
# states, after at least one checkpoint is on disk.
log "flaky crash run"
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" -step-delay 400ms -flaky-seed 1 &
PID=$!
wait_healthy
ID="$(curl -fsS -X POST "$BASE/jobs" -d "$FLAKY_SPEC" | jq -r .id)"
[ -n "$ID" ] && [ "$ID" != null ] || die "flaky submission returned no job id"
CKPTS=0
for _ in $(seq 1 100); do
    CKPTS="$(get_job "$ID" .checkpoints_written)"
    [ "$CKPTS" -ge 1 ] 2>/dev/null && break
    sleep 0.1
done
[ "$CKPTS" -ge 1 ] || die "no checkpoint written before the kill window"
log "SIGKILL after $CKPTS checkpoint(s), state $(get_job "$ID" .state)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# --- Restarts: recovery resumes the job until it completes. -----------
# Each restart rotates the fault seed — process restarts are exactly
# when a real outage profile changes — so a deterministic fault
# sequence cannot pin the job on the same call forever.
STATUS=""
for seed in $(seq 2 10); do
    log "restart (flaky seed $seed)"
    "$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" -flaky-seed "$seed" &
    PID=$!
    wait_healthy
    STATUS="$(wait_terminal "$ID")"
    stop_server
    case "$STATUS" in
    completed) break ;;
    interrupted) continue ;; # transient injected fault; restart resumes
    *) die "flaky job reached $STATUS" ;;
    esac
done
[ "$STATUS" = completed ] || die "flaky job never completed across restarts"

# Inspect the final record through one more server life.
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" &
PID=$!
wait_healthy
GOT_VERDICT="$(get_job "$ID" .verdict)"
RESUMES="$(get_job "$ID" .resumes)"
REPLAYED="$(get_job "$ID" .states_replayed)"
[ "$GOT_VERDICT" = "$WANT_VERDICT" ] ||
    die "resumed verdict $GOT_VERDICT != offline reference $WANT_VERDICT"
[ "$RESUMES" -ge 1 ] || die "job completed without resuming (resumes=$RESUMES)"
log "resumed (resumes=$RESUMES, states_replayed=$REPLAYED), verdict $GOT_VERDICT"
stop_server
log "PASS"
