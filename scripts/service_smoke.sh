#!/usr/bin/env bash
# Crash-resume smoke test for the aivrild job service.
#
# The in-process test suite proves the resume property with injected
# interruptions (serve_test.go); this script proves it against the real
# binary and a real SIGKILL: start aivrild, submit a job through the
# fault-injecting flaky provider, kill -9 the server mid-run, restart
# it on the same cache directory, and require the job to resume from
# its checkpoint and finish with the exact verdict an uninterrupted
# offline run produces (fault injection wraps the same deterministic
# model, so the verdicts must agree).
#
# Requires: go, curl, jq.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ADDR="${AIVRILD_ADDR:-127.0.0.1:18467}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "smoke: $*"; }
die() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$WORK/aivrild" ./cmd/aivrild

PROBLEM=cmp_lt_w4
OFFLINE_SPEC="{\"problem\":\"$PROBLEM\",\"model\":\"claude-3.5-sonnet\",\"language\":\"verilog\"}"
FLAKY_SPEC="{\"problem\":\"$PROBLEM\",\"model\":\"claude-3.5-sonnet\",\"language\":\"verilog\",\"provider\":\"flaky\"}"

wait_healthy() {
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    die "server at $BASE never became healthy"
}

# get_job <id> <jq-expr>
get_job() { curl -fsS "$BASE/jobs/$1" | jq -r "$2"; }

# wait_terminal <id> [ticks] -> echoes the terminal status
wait_terminal() {
    local id="$1" ticks="${2:-400}" st=""
    for _ in $(seq 1 "$ticks"); do
        st="$(get_job "$id" .status)"
        case "$st" in
        completed | failed | canceled | interrupted)
            echo "$st"
            return 0
            ;;
        esac
        sleep 0.1
    done
    die "job $id stuck in $st"
}

stop_server() {
    [ -n "$PID" ] || return 0
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
}

# --- Reference: an uninterrupted offline run of the same problem. -----
log "offline reference run"
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/ref" &
PID=$!
wait_healthy
REF_ID="$(curl -fsS -X POST "$BASE/jobs" -d "$OFFLINE_SPEC" | jq -r .id)"
[ -n "$REF_ID" ] && [ "$REF_ID" != null ] || die "submission returned no job id"
[ "$(wait_terminal "$REF_ID")" = completed ] || die "reference run did not complete"
WANT_VERDICT="$(get_job "$REF_ID" .verdict)"
log "reference verdict: $WANT_VERDICT"
stop_server

# --- Crash run: flaky-provider job, SIGKILL the server mid-job. -------
# The step delay stretches the run to seconds so the kill lands between
# states, after at least one checkpoint is on disk.
log "flaky crash run"
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" -step-delay 400ms -flaky-seed 1 &
PID=$!
wait_healthy
ID="$(curl -fsS -X POST "$BASE/jobs" -d "$FLAKY_SPEC" | jq -r .id)"
[ -n "$ID" ] && [ "$ID" != null ] || die "flaky submission returned no job id"
CKPTS=0
for _ in $(seq 1 100); do
    CKPTS="$(get_job "$ID" .checkpoints_written)"
    [ "$CKPTS" -ge 1 ] 2>/dev/null && break
    sleep 0.1
done
[ "$CKPTS" -ge 1 ] || die "no checkpoint written before the kill window"
log "SIGKILL after $CKPTS checkpoint(s), state $(get_job "$ID" .state)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# --- Restarts: recovery resumes the job until it completes. -----------
# Each restart rotates the fault seed — process restarts are exactly
# when a real outage profile changes — so a deterministic fault
# sequence cannot pin the job on the same call forever.
STATUS=""
for seed in $(seq 2 10); do
    log "restart (flaky seed $seed)"
    "$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" -flaky-seed "$seed" &
    PID=$!
    wait_healthy
    STATUS="$(wait_terminal "$ID")"
    stop_server
    case "$STATUS" in
    completed) break ;;
    interrupted) continue ;; # transient injected fault; restart resumes
    *) die "flaky job reached $STATUS" ;;
    esac
done
[ "$STATUS" = completed ] || die "flaky job never completed across restarts"

# Inspect the final record through one more server life.
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/crash" &
PID=$!
wait_healthy
GOT_VERDICT="$(get_job "$ID" .verdict)"
RESUMES="$(get_job "$ID" .resumes)"
REPLAYED="$(get_job "$ID" .states_replayed)"
[ "$GOT_VERDICT" = "$WANT_VERDICT" ] ||
    die "resumed verdict $GOT_VERDICT != offline reference $WANT_VERDICT"
[ "$RESUMES" -ge 1 ] || die "job completed without resuming (resumes=$RESUMES)"
log "resumed (resumes=$RESUMES, states_replayed=$REPLAYED), verdict $GOT_VERDICT"
stop_server

# --- Remote sweep: benchsuite -server through the queue must be -------
# byte-identical to the same sweep run in-process.
log "remote sweep via benchsuite -server"
go build -o "$WORK/benchsuite" ./cmd/benchsuite

"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/sweep-remote" -workers 4 -queue 8 &
PID=$!
wait_healthy
"$WORK/benchsuite" -server "$BASE" -priority 5 -table1 -every 31 \
    -cache-dir "$WORK/sweep-client" -json "$WORK/remote.json" >"$WORK/remote.out"
grep -q "dispatch" "$WORK/remote.out" || die "remote manifest missing dispatch line"
stop_server

"$WORK/benchsuite" -table1 -every 31 -cache-dir "$WORK/sweep-local" \
    -json "$WORK/local.json" >/dev/null
cmp -s "$WORK/remote.json" "$WORK/local.json" ||
    die "remote sweep JSON differs from in-process sweep"
log "remote sweep byte-identical to in-process"

# --- Drain with a live subscriber: SIGTERM must not burn the full -----
# drain timeout just because an SSE client is attached.
log "SIGTERM drain with attached event subscriber"
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/drain" -step-delay 400ms &
PID=$!
wait_healthy
DRAIN_ID="$(curl -fsS -X POST "$BASE/jobs" -d "$OFFLINE_SPEC" | jq -r .id)"
[ -n "$DRAIN_ID" ] && [ "$DRAIN_ID" != null ] || die "drain submission returned no job id"
curl -fsS -N "$BASE/jobs/$DRAIN_ID/events" >"$WORK/drain-events" 2>/dev/null &
CURL_PID=$!
sleep 0.5 # let the stream attach and the job pass a checkpoint
T0="$(date +%s)"
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
ELAPSED="$(($(date +%s) - T0))"
wait "$CURL_PID" 2>/dev/null || true
# Default -drain-timeout is 30s; a subscriber-pinned drain burns all of
# it. The fixed path releases the stream and exits within a few seconds.
[ "$ELAPSED" -lt 10 ] || die "drain with subscriber took ${ELAPSED}s (subscriber pinned the shutdown)"
log "drained in ${ELAPSED}s with a live subscriber"

# The interrupted job resumes to the reference verdict after restart.
"$WORK/aivrild" -addr "$ADDR" -cache-dir "$WORK/drain" &
PID=$!
wait_healthy
[ "$(wait_terminal "$DRAIN_ID")" = completed ] || die "drained job did not complete after restart"
DRAIN_VERDICT="$(get_job "$DRAIN_ID" .verdict)"
[ "$DRAIN_VERDICT" = "$WANT_VERDICT" ] ||
    die "post-drain verdict $DRAIN_VERDICT != offline reference $WANT_VERDICT"
log "post-drain resume verdict $DRAIN_VERDICT"
stop_server
log "PASS"
